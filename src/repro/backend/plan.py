"""Execution plans: precomputed index tables, contraction paths, scratch.

Everything here is pure shape algebra — no kernel math.  Plans are built
once per :class:`~repro.backend.workload.Workload` and cached in the global
:data:`~repro.backend.workload.PLAN_CACHE`:

- :func:`contraction_path` / :func:`planned_einsum` — ``np.einsum_path``
  results keyed by (subscripts, operand shapes, dtype), so the hot loops
  never pay the per-call path search that ``optimize=True`` runs;
- :func:`conv2d_plan` — padded/output geometry plus the three contraction
  paths of a (grouped) convolution's forward/backward;
- :func:`pool2d_plan` — pooling window geometry;
- :func:`scc_plan` — the SCC window matrix, channel cycle, per-cycle gather
  indices and contiguous segment table (paper Algorithms 1+2), shared by
  every strategy instance with the same (Cin, Cout, cg, co), plus the dense
  ``W_full`` scratch workspace of the input-centric backward.
"""
from __future__ import annotations

import threading
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.backend.parallel import worker_limit
from repro.backend.plan_db import tuned_plan
from repro.backend.registry import backend_override, current_backend_override
from repro.backend.schedule import conv_schedule, pull_tile_for
from repro.backend.workload import PLAN_CACHE, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.channel_map import SCCConfig


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution/pooling window sweep."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces empty output: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


# ---------------------------------------------------------------------------
# Cached einsum contraction paths
# ---------------------------------------------------------------------------

def _build_path(subscripts: str, shapes: tuple, dtype: str):
    # Zero-stride dummies: einsum_path only inspects shapes and dtypes.
    ops = [np.broadcast_to(np.empty((), dtype=dtype), s) for s in shapes]
    return np.einsum_path(subscripts, *ops, optimize="optimal")[0]


def contraction_path(subscripts: str, shapes: tuple, dtype) -> list:
    """The ``np.einsum_path`` plan for one contraction shape-class, cached."""
    workload = Workload.make(
        "einsum", in_shape=shapes, dtype=dtype, subscripts=subscripts
    )
    return PLAN_CACHE.get_or_build(
        workload, lambda: _build_path(subscripts, workload.in_shape, workload.dtype)
    )


def planned_einsum(subscripts: str, *operands: np.ndarray) -> np.ndarray:
    """``np.einsum`` with its contraction path served from the plan cache.

    Semantically identical to ``np.einsum(..., optimize=True)`` but the path
    search runs once per (subscripts, shapes, dtype) instead of per call.
    """
    shapes = tuple(op.shape for op in operands)
    path = contraction_path(subscripts, shapes, np.result_type(*operands))
    return np.einsum(subscripts, *operands, optimize=path)


# ---------------------------------------------------------------------------
# Tiled contractions: the canonical fixed-order pairwise combine
# ---------------------------------------------------------------------------

def combine_partials_tree(partials: list[np.ndarray]) -> np.ndarray:
    """Combine per-tile partial products in a fixed pairwise-tree order.

    ``((p0 + p1) + (p2 + p3)) + ...`` — adjacent pairs per level, an odd
    tail carried unchanged.  The order depends only on the *number* of
    tiles, never on worker count or completion order, so it defines the
    canonical result of a tiled contraction: the ``numpy`` backend combines
    serially-computed tiles this way and the ``threaded`` backend combines
    pool-computed tiles the same way, keeping the two bitwise-identical at
    every tile size and every ``REPRO_NUM_WORKERS``.

    Combines in place into the even-indexed partials (each partial is an
    owned einsum output, never a view of caller data).
    """
    parts = list(partials)
    if not parts:
        raise ValueError("combine_partials_tree needs at least one partial")
    while len(parts) > 1:
        merged = []
        for i in range(0, len(parts) - 1, 2):
            np.add(parts[i], parts[i + 1], out=parts[i])
            merged.append(parts[i])
        if len(parts) % 2:
            merged.append(parts[-1])
        parts = merged
    return parts[0]


# ---------------------------------------------------------------------------
# Plan-resolved execution: tuned backend / worker count applied at dispatch
# ---------------------------------------------------------------------------

def _tuned_execution(wl: Workload) -> tuple[str | None, int | None]:
    """The (backend, workers) a plan database recorded for this workload.

    The auto-tuner stores the winning ``backend`` and ``workers`` alongside
    the tile fields; tiles are consumed by :mod:`repro.backend.schedule`,
    and these two are resolved here at plan build so :func:`dispatch_plan`
    can apply them at call time.  (None, None) when no database is active
    or the record carries no execution fields.
    """
    tuned = tuned_plan(wl)
    if not tuned:
        return None, None
    backend = tuned.get("backend")
    workers = tuned.get("workers")
    return (
        str(backend) if backend is not None else None,
        int(workers) if workers is not None else None,
    )


def _resolved_executor(backend: str | None, workers: int | None) -> str | None:
    if backend is None and workers is None:
        return None
    if workers is None:
        return backend
    return f"{backend or 'default'}@{workers}"


@contextmanager
def dispatch_plan(plan, apply_backend: bool = True) -> Iterator[None]:
    """Apply a plan's recorded execution fields for the duration of a call.

    Enters :func:`~repro.backend.registry.backend_override` for the plan's
    ``resolved_backend`` (only when no override is already active and only
    for ``apply_backend=True`` call sites — layers that resolved their
    kernel eagerly at construction pass False so the worker cap still
    applies) and :func:`~repro.backend.parallel.worker_limit` for
    ``resolved_workers``.  Explicit ``backend=`` arguments at the call site
    win automatically — the registry override only steers *default*
    dispatch — and a plan with no recorded execution fields costs a single
    attribute check.
    """
    backend = getattr(plan, "resolved_backend", None)
    workers = getattr(plan, "resolved_workers", None)
    if backend is None and workers is None:
        yield
        return
    with ExitStack() as stack:
        if (
            apply_backend
            and backend is not None
            and current_backend_override() is None
        ):
            stack.enter_context(backend_override(backend))
        if workers is not None:
            stack.enter_context(worker_limit(workers))
        yield


# ---------------------------------------------------------------------------
# Convolution plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Conv2dPlan:
    """Geometry + contraction paths for one (grouped) conv2d workload."""

    x_shape: tuple
    w_shape: tuple
    stride: int
    padding: int
    groups: int
    dtype: str
    out_shape: tuple          # (N, Cout, Ho, Wo)
    fwd_path: list            # patches x weight -> out (per group)
    gradw_path: list          # grad x patches -> grad_w (per group)
    gradx_path: list          # grad x weight tap -> grad_x contribution
    # Tile schedule (repro.backend.schedule): the input-channel tile of the
    # dense forward and the batch tile of the dense grad-weight, resolved
    # from the per-workload schedule table at plan build.  0 = untiled.
    # Kernels resolve the *effective* tile at call time (an active
    # tile_override wins), so tiles never leak into cache keys.
    k_tile: int = 0
    gradw_tile: int = 0
    # Execution fields recorded by the plan auto-tuner (REPRO_PLAN_DB):
    # the backend and worker count the tuner measured as fastest for this
    # workload.  Applied at call time by dispatch_plan; None = no record,
    # dispatch follows the ambient default.
    resolved_backend: str | None = None
    resolved_workers: int | None = None

    @property
    def kernel(self) -> tuple[int, int]:
        return self.w_shape[2], self.w_shape[3]

    @property
    def resolved_executor(self) -> str | None:
        """Human-readable ``backend@workers`` this plan dispatches under."""
        return _resolved_executor(self.resolved_backend, self.resolved_workers)


def _build_conv2d_plan(wl: Workload) -> Conv2dPlan:
    x_shape, w_shape = wl.in_shape, wl.weight_shape
    stride, padding, groups = wl.param("stride"), wl.param("padding"), wl.param("groups")
    n, cin, h, w = x_shape
    cout, cin_g, kh, kw = w_shape
    if cin % groups or cout % groups:
        raise ValueError(f"groups={groups} must divide Cin={cin} and Cout={cout}")
    if cin_g != cin // groups:
        raise ValueError(
            f"weight expects {cin_g} input channels per group but input provides "
            f"{cin // groups} (Cin={cin}, groups={groups})"
        )
    ho = conv_out_size(h, kh, stride, padding)
    wo = conv_out_size(w, kw, stride, padding)
    og = cout // groups
    patch_shape = (n, cin_g, ho, wo, kh, kw)   # per-group patch view
    # The workload key lets an active plan database (REPRO_PLAN_DB) serve
    # tuned tiles ahead of the static schedule tables.
    sched = conv_schedule(x_shape, w_shape, stride, groups, workload=wl)
    tuned_backend, tuned_workers = _tuned_execution(wl)
    return Conv2dPlan(
        x_shape=x_shape,
        w_shape=w_shape,
        stride=stride,
        padding=padding,
        groups=groups,
        dtype=wl.dtype,
        out_shape=(n, cout, ho, wo),
        fwd_path=_build_path(
            "nchwij,ocij->nohw", (patch_shape, (og, cin_g, kh, kw)), wl.dtype
        ),
        gradw_path=_build_path(
            "nohw,nchwij->ocij", ((n, og, ho, wo), patch_shape), wl.dtype
        ),
        gradx_path=_build_path(
            "nohw,oc->nchw", ((n, og, ho, wo), (og, cin_g)), wl.dtype
        ),
        k_tile=sched.k_tile,
        gradw_tile=sched.gradw_tile,
        resolved_backend=tuned_backend,
        resolved_workers=tuned_workers,
    )


def conv2d_plan(
    x_shape: tuple, w_shape: tuple, stride: int, padding: int, groups: int, dtype
) -> Conv2dPlan:
    wl = Workload.make(
        "conv2d", x_shape, w_shape, dtype, stride=stride, padding=padding, groups=groups
    )
    return PLAN_CACHE.get_or_build(wl, lambda: _build_conv2d_plan(wl))


# ---------------------------------------------------------------------------
# Fused plans: staged conv -> bias -> BN-affine -> activation epilogues
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EpilogueSpec:
    """The *static* shape of a fused epilogue — part of the fused plan key.

    Which stages exist (bias add, eval-mode BN affine, which activation) is
    static per layer; the parameter *values* arrive per call as an
    :class:`EpilogueArgs`.
    """

    bias: bool = False
    affine: bool = False              # BN eval affine: (x - mean) * scale + beta
    activation: str | None = None     # None | "relu" | "relu6"

    def __post_init__(self) -> None:
        if self.activation not in (None, "relu", "relu6"):
            raise ValueError(
                f"activation must be None, 'relu' or 'relu6', got "
                f"{self.activation!r}"
            )

    @property
    def stages(self) -> int:
        """Fused elementwise stages (for the gpusim fusion term)."""
        return int(self.bias) + int(self.affine) + int(self.activation is not None)


@dataclass
class EpilogueArgs:
    """Per-call epilogue operands, broadcast-shaped ``(1, C, 1, 1)``.

    :meth:`apply` replays, **in place on an output slab**, exactly the
    elementwise op sequence the unfused layer stack composes — bias add,
    then the eval-mode BN affine in its ``(x - mean) * scale + beta`` order,
    then the activation as the autograd ops compute it (``relu`` is
    ``x * (x > 0)``; ``relu6`` is the literal ``6 - relu(6 - relu(x))``
    sequence).  Elementwise ops are bitwise-insensitive to slab
    partitioning, so fused output == unfused output bit-for-bit.
    """

    bias: np.ndarray | None = None
    mean: np.ndarray | None = None
    scale: np.ndarray | None = None
    beta: np.ndarray | None = None
    activation: str | None = None

    def apply(self, out: np.ndarray, ch: slice = slice(None)) -> None:
        """Apply the epilogue in place to ``out``, an output slab holding
        the channels selected by ``ch`` (a slice into the full channel
        axis, matching how the per-channel operands are indexed)."""
        if self.bias is not None:
            np.add(out, self.bias[:, ch], out=out)
        if self.scale is not None:
            np.subtract(out, self.mean[:, ch], out=out)
            np.multiply(out, self.scale[:, ch], out=out)
            np.add(out, self.beta[:, ch], out=out)
        if self.activation == "relu":
            np.multiply(out, out > 0, out=out)
        elif self.activation == "relu6":
            six = np.asarray(6.0, dtype=out.dtype)
            np.multiply(out, out > 0, out=out)
            np.subtract(six, out, out=out)
            np.multiply(out, out > 0, out=out)
            np.subtract(six, out, out=out)

    def spec(self) -> EpilogueSpec:
        return EpilogueSpec(
            bias=self.bias is not None,
            affine=self.scale is not None,
            activation=self.activation,
        )


@dataclass(frozen=True)
class FusedConv2dPlan:
    """A conv2d plan that has learned its staged epilogue.

    Distinct cache entries per epilogue shape: a model serving both a fused
    and an unfused instance of one geometry keeps both plans resident.
    """

    base: Conv2dPlan
    spec: EpilogueSpec

    # Execution fields delegate to the base geometry plan: the tuner keys
    # records by the conv workload, and the fused epilogue is elementwise —
    # it changes nothing about which backend/width wins.
    @property
    def resolved_backend(self) -> str | None:
        return self.base.resolved_backend

    @property
    def resolved_workers(self) -> int | None:
        return self.base.resolved_workers

    @property
    def resolved_executor(self) -> str | None:
        return self.base.resolved_executor


def conv2d_fused_plan(
    x_shape: tuple,
    w_shape: tuple,
    stride: int,
    padding: int,
    groups: int,
    dtype,
    spec: EpilogueSpec,
) -> FusedConv2dPlan:
    wl = Workload.make(
        "conv2d_fused", x_shape, w_shape, dtype,
        stride=stride, padding=padding, groups=groups,
        bias=spec.bias, affine=spec.affine, activation=spec.activation,
    )
    return PLAN_CACHE.get_or_build(
        wl,
        lambda: FusedConv2dPlan(
            base=conv2d_plan(x_shape, w_shape, stride, padding, groups, dtype),
            spec=spec,
        ),
    )


# ---------------------------------------------------------------------------
# Pooling plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Pool2dPlan:
    """Window geometry for one pooling workload."""

    kind: str                 # "max" | "avg"
    x_shape: tuple
    kernel: int
    stride: int
    padding: int
    dtype: str
    out_shape: tuple
    padded_shape: tuple


def _build_pool2d_plan(wl: Workload) -> Pool2dPlan:
    kind = wl.param("kind")
    kernel, stride, padding = wl.param("kernel"), wl.param("stride"), wl.param("padding")
    n, c, h, w = wl.in_shape
    if kind == "avg":
        if stride != kernel:
            raise NotImplementedError("AvgPool2d supports stride == kernel only")
        if padding:
            raise NotImplementedError("AvgPool2d does not support padding")
        if h % kernel or w % kernel:
            raise ValueError(f"spatial dims ({h},{w}) not divisible by kernel {kernel}")
        ho, wo = h // kernel, w // kernel
    else:
        ho = conv_out_size(h, kernel, stride, padding)
        wo = conv_out_size(w, kernel, stride, padding)
    return Pool2dPlan(
        kind=kind,
        x_shape=wl.in_shape,
        kernel=kernel,
        stride=stride,
        padding=padding,
        dtype=wl.dtype,
        out_shape=(n, c, ho, wo),
        padded_shape=(n, c, h + 2 * padding, w + 2 * padding),
    )


def pool2d_plan(
    kind: str, x_shape: tuple, kernel: int, stride: int, padding: int, dtype
) -> Pool2dPlan:
    wl = Workload.make(
        f"{kind}pool2d", x_shape, dtype=dtype,
        kind=kind, kernel=kernel, stride=stride, padding=padding,
    )
    return PLAN_CACHE.get_or_build(wl, lambda: _build_pool2d_plan(wl))


# ---------------------------------------------------------------------------
# SCC plans
# ---------------------------------------------------------------------------

@dataclass
class SCCPlan:
    """Shared index tables + scratch of one SCC configuration.

    One plan per (Cin, Cout, cg, co) serves every strategy instance — the
    window matrix, channel cycle (paper Algorithm 1), per-cycle gather index
    vectors and zero-copy segment table (Algorithm 2) are computed exactly
    once per process instead of once per layer construction.
    """

    config: "SCCConfig"
    windows: np.ndarray                     # (Cout, gw) per-filter channel indices
    cycle: list                             # Algorithm-1 (start, end) pairs
    cyclic_dist: int
    cycle_index: list                       # per cycle position: gathered channel idx
    segments: list                          # per cycle position: [(chan_slice, col_slice)]
    oid_rows: np.ndarray                    # arange(Cout)[:, None], for W_full fill
    # Contracted output-channel tile of the input-centric pull-GEMM, from
    # the per-workload schedule table (0 = untiled); kernels resolve the
    # effective tile at call time so tile_override needs no cache change.
    pull_tile: int = 0
    # Tuned execution fields (see Conv2dPlan): worker count is applied by
    # dispatch_plan around strategy forward/backward; the backend field is
    # recorded for introspection but SCC strategies resolve their kernel
    # eagerly at construction, so it does not re-steer dispatch there.
    resolved_backend: str | None = None
    resolved_workers: int | None = None
    _scratch: threading.local = field(default_factory=threading.local, repr=False)

    @property
    def resolved_executor(self) -> str | None:
        """Human-readable ``backend@workers`` this plan dispatches under."""
        return _resolved_executor(self.resolved_backend, self.resolved_workers)

    def w_full(self, w: np.ndarray) -> np.ndarray:
        """Dense (Cout, Cin) weight matrix, zeros outside each window.

        The buffer is a cached scratch workspace: window positions are
        overwritten on every call and off-window entries are zero by
        construction, so reuse is safe as long as the result is consumed
        before the next fill (which the pull backward does).  Plans are
        shared process-wide, so the scratch is *thread-local* — concurrent
        backward passes over same-config layers each get their own buffer.
        """
        buffers = getattr(self._scratch, "buffers", None)
        if buffers is None:
            buffers = self._scratch.buffers = {}
        key = np.dtype(w.dtype).str
        buf = buffers.get(key)
        if buf is None:
            cfg = self.config
            buf = np.zeros((cfg.out_channels, cfg.in_channels), dtype=w.dtype)
            buffers[key] = buf
        buf[self.oid_rows, self.windows] = w
        return buf


def _build_scc_plan(config: "SCCConfig", wl: Workload) -> SCCPlan:
    # Imported lazily to keep repro.backend import-independent of repro.core
    # (repro.core.scc_kernels imports repro.backend at module level).
    from repro.core.channel_map import (
        channel_windows,
        compute_channel_cycle,
        window_segments,
    )

    windows = channel_windows(
        config.in_channels, config.out_channels, config.cg, config.co
    )
    cycle = compute_channel_cycle(
        config.in_channels, config.cg, config.co, config.out_channels
    )
    gw = config.group_width
    cycle_index = [
        (start + np.arange(gw)) % config.in_channels for start, _ in cycle
    ]
    segments = [
        window_segments(start, gw, config.in_channels) for start, _ in cycle
    ]
    tuned_backend, tuned_workers = _tuned_execution(wl)
    return SCCPlan(
        config=config,
        windows=windows,
        cycle=cycle,
        cyclic_dist=len(cycle),
        cycle_index=cycle_index,
        segments=segments,
        oid_rows=np.arange(config.out_channels)[:, None],
        pull_tile=pull_tile_for(
            config.in_channels, config.out_channels, workload=wl
        ),
        resolved_backend=tuned_backend,
        resolved_workers=tuned_workers,
    )


def scc_plan(config: "SCCConfig") -> SCCPlan:
    wl = Workload.make(
        "scc_plan",
        cin=config.in_channels,
        cout=config.out_channels,
        cg=config.cg,
        co=config.co,
    )
    return PLAN_CACHE.get_or_build(wl, lambda: _build_scc_plan(config, wl))
