"""Unified kernel backend: op registry + execution-plan cache.

This package is the single execution layer behind ``repro.tensor.conv_ops``,
``repro.core.scc_kernels``, ``repro.nn`` layers and the ``repro.gpusim``
cross-checks.  It separates **what** is computed from **how**:

Kernel registry (``repro.backend.registry``)
    Named ops — ``conv2d``, ``conv2d_backward``, ``scc_forward``,
    ``scc_backward``, ``maxpool2d``, ``avgpool2d`` (each with a
    ``*_backward`` pair) — dispatched to pluggable backends:

    ============  =======================================================
    reference     naive loop kernels; ground truth for every fast path
    numpy         einsum / ``as_strided`` fast paths fed by cached plans
    threaded      numpy kernels sharded over the shared worker pool
                  (``REPRO_NUM_WORKERS``); bitwise-identical to numpy
    numba         optional JIT of the segment/tap loops; registers only
                  when numba imports (bare containers fall back silently)
    default       auto-selects the preferred available backend (numpy,
                  or ``REPRO_BACKEND`` when set — with per-op fallback)
    ============  =======================================================

    Layers thread a ``backend=`` argument down to the dispatch
    (``nn.Conv2d(..., backend="reference")``,
    ``SlidingChannelConv2d(..., backend=...)``,
    ``build_model(..., backend=...)``), so any subtree of a model can be
    pinned to a specific implementation.  Adding a backend is one module of
    :func:`~repro.backend.registry.register_kernel` decorators — call sites
    never change.

Execution-plan cache (``repro.backend.workload`` / ``repro.backend.plan``)
    A :class:`~repro.backend.workload.Workload` descriptor (op, operand
    shapes, dtype, static hyper-parameters such as stride/padding/groups or
    cg/co) keys a process-wide LRU of precomputed plans:

    - SCC window matrices, channel cycles and zero-copy segment tables
      (paper Algorithms 1+2) — built once per configuration, shared by all
      strategy instances and layers;
    - ``np.einsum_path`` contraction plans — the per-call path search of
      ``optimize=True`` is paid once per shape-class;
    - convolution patch-view geometry and scratch workspaces (the dense
      ``W_full`` matrix of the input-centric SCC backward).

    Repeated-shape execution (every training step after the first) runs
    entirely on cache hits; ``benchmarks/bench_ablation_plan_cache.py``
    quantifies the win.  Use :func:`plan_cache_stats` to observe hit rates
    and :func:`clear_plan_cache` to model cold execution.  The cache is
    thread-safe and single-flight: concurrent misses on one workload run
    the builder exactly once.  Traffic is attributable: wrap a client in
    :func:`plan_owner` (the multi-model serving router tags each model
    this way) and :func:`plan_cache_owner_stats` reports per-owner
    hit/miss/build/eviction counts that sum to the global ones, while
    eviction under capacity pressure is traffic-weighted LRU — victims
    are drawn from the LRU tail, preferring owners with the least recent
    traffic, so a hot model's plans survive a cold model's churn.

Model plans (``repro.backend.model_plan``)
    :class:`ModelPlan` lifts planning to whole models: the ordered layer
    workloads are harvested from a probe forward pass, every layer plan is
    pre-built at construction, and batch-staging workspaces are
    pre-allocated — the first training step or serving request runs 100%
    warm.  ``build_model(..., plan_input_shape=...)`` attaches one; the
    trainer and the :mod:`repro.serve` front-end consume them.

Typical use::

    from repro.backend import get_kernel, conv2d_plan

    plan = conv2d_plan(x.shape, w.shape, stride=1, padding=1, groups=1,
                       dtype=x.dtype)
    out, ctx = get_kernel("conv2d")(plan, x, w)            # default backend
    ref, _ = get_kernel("conv2d", "reference")(plan, x, w) # ground truth
"""
from repro.backend.registry import (
    REGISTRY,
    KernelRegistry,
    available_backends,
    backend_override,
    current_backend_override,
    get_kernel,
    register_kernel,
)
from repro.backend.stats import KernelStats, scc_conflict_fraction
from repro.backend.workload import (
    PLAN_CACHE,
    PlanCache,
    Workload,
    clear_plan_cache,
    current_plan_owner,
    plan_cache_owner_stats,
    plan_cache_stats,
    plan_owner,
)
from repro.backend.model_plan import ModelPlan, PlannedLayer, layer_workload
from repro.backend.plan import (
    Conv2dPlan,
    EpilogueArgs,
    EpilogueSpec,
    FusedConv2dPlan,
    Pool2dPlan,
    SCCPlan,
    combine_partials_tree,
    contraction_path,
    conv2d_fused_plan,
    conv2d_plan,
    conv_out_size,
    dispatch_plan,
    planned_einsum,
    pool2d_plan,
    scc_plan,
)
from repro.backend.plan_db import (
    PlanDatabase,
    active_plan_db,
    env_stamp,
    load_plan_db,
    set_plan_db,
    use_plan_db,
)
from repro.backend.schedule import (
    TileSchedule,
    precision,
    precision_tier,
    schedule_table,
    set_precision_tier,
    tile_override,
    tile_slices,
)

from repro.backend.parallel import (
    EXECUTOR_TIERS,
    Executor,
    InlineExecutor,
    ShardError,
    ThreadExecutor,
    default_num_workers,
    get_executor,
    get_num_workers,
    num_workers,
    parallel_map,
    set_executor,
    set_num_workers,
    submit_pooled,
    use_executor,
    worker_limit,
)
from repro.backend.registry import env_backend_order

# Importing the backend modules registers their kernels.
from repro.backend import numpy_backend as _numpy_backend  # noqa: F401
from repro.backend import reference as _reference          # noqa: F401
from repro.backend import threaded_backend as _threaded_backend  # noqa: F401
from repro.backend import numba_backend as _numba_backend  # noqa: F401

NUMBA_AVAILABLE = _numba_backend.NUMBA_AVAILABLE

# REPRO_BACKEND overrides the "default" preference order (with silent
# per-op fallback to numpy when the named backend is absent — see
# env_backend_order).  Applied after registration so resolution is complete.
REGISTRY.default_order = env_backend_order()

__all__ = [
    "REGISTRY",
    "KernelRegistry",
    "available_backends",
    "backend_override",
    "current_backend_override",
    "env_backend_order",
    "get_kernel",
    "register_kernel",
    "ShardError",
    "NUMBA_AVAILABLE",
    "EXECUTOR_TIERS",
    "Executor",
    "InlineExecutor",
    "ThreadExecutor",
    "default_num_workers",
    "get_executor",
    "get_num_workers",
    "num_workers",
    "parallel_map",
    "set_executor",
    "set_num_workers",
    "submit_pooled",
    "use_executor",
    "worker_limit",
    "KernelStats",
    "scc_conflict_fraction",
    "PLAN_CACHE",
    "PlanCache",
    "Workload",
    "clear_plan_cache",
    "current_plan_owner",
    "plan_cache_owner_stats",
    "plan_cache_stats",
    "plan_owner",
    "ModelPlan",
    "PlannedLayer",
    "layer_workload",
    "Conv2dPlan",
    "EpilogueArgs",
    "EpilogueSpec",
    "FusedConv2dPlan",
    "Pool2dPlan",
    "SCCPlan",
    "combine_partials_tree",
    "contraction_path",
    "conv2d_fused_plan",
    "conv2d_plan",
    "conv_out_size",
    "dispatch_plan",
    "planned_einsum",
    "pool2d_plan",
    "scc_plan",
    "PlanDatabase",
    "active_plan_db",
    "env_stamp",
    "load_plan_db",
    "set_plan_db",
    "use_plan_db",
    "TileSchedule",
    "precision",
    "precision_tier",
    "schedule_table",
    "set_precision_tier",
    "tile_override",
    "tile_slices",
]
