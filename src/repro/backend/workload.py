"""Workload descriptors and the process-wide execution-plan cache.

A :class:`Workload` is a hashable value-object naming one op invocation
shape-class: the op, the operand shapes, the dtype and the static
hyper-parameters (stride/padding/groups, cg/co, ...).  Anything derivable
from a workload alone — window/segment index tables, ``np.einsum_path``
contraction plans, scratch buffers — is computed once, stored in the
:class:`PlanCache`, and reused by every subsequent call with the same
workload.  This is the repo's analog of TVM/topi's per-workload schedule
tables: dispatch keys on *what* is being computed, plans capture *how*.
"""
from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


def _canonical(value: Any) -> Any:
    """Recursively convert a param value to a hashable canonical form.

    Lists, tuples and ndarrays all become (nested) tuples, and numpy scalars
    become Python scalars, so ``padding=[1, 1]``, ``padding=(1, 1)`` and
    ``padding=np.array([1, 1])`` key the same plan instead of raising
    ``TypeError: unhashable type`` at cache-lookup time.
    """
    if isinstance(value, np.ndarray):
        return _canonical(value.tolist())
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass(frozen=True)
class Workload:
    """Hashable descriptor of one kernel-invocation shape-class."""

    op: str
    in_shape: tuple = ()
    weight_shape: tuple = ()
    dtype: str = "float32"
    params: tuple = ()  # sorted (name, value) pairs of static hyper-parameters

    @classmethod
    def make(
        cls,
        op: str,
        in_shape: tuple = (),
        weight_shape: tuple = (),
        dtype: Any = "float32",
        **params: Any,
    ) -> "Workload":
        return cls(
            op=op,
            in_shape=_canonical(tuple(in_shape)),
            weight_shape=_canonical(tuple(weight_shape)),
            # Canonical name so "float32", np.float32 and np.dtype("float32")
            # all key the same plan.
            dtype=np.dtype(dtype).name,
            params=tuple(sorted((k, _canonical(v)) for k, v in params.items())),
        )

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default


class PlanCache:
    """LRU cache mapping :class:`Workload` -> execution plan.

    Plans are built on first use by the ``builder`` passed to
    :meth:`get_or_build`; a builder that raises caches nothing, so invalid
    workloads fail identically on every call.  Hit/miss counters make the
    cache's effect observable (``bench_ablation_plan_cache`` reports them).

    Lookups are **single-flight**: when several threads miss the same
    workload concurrently, exactly one runs the (possibly slow) builder
    outside the lock while the others wait and are then served the finished
    plan.  ``misses`` therefore counts true builder invocations — a waiter
    that receives an in-flight build counts as a hit, never as a second
    build — so ``stats()["misses"] == stats()["builds"]`` always holds and
    hit rates stay meaningful under a multi-threaded serving front-end.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self._plans: OrderedDict[Workload, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._building: set[Workload] = set()
        self._epoch = 0  # bumped by clear(): in-flight builds must not insert

    def get_or_build(self, workload: Workload, builder: Callable[[], Any]) -> Any:
        with self._cond:
            while True:
                if workload in self._plans:
                    self.hits += 1
                    self._plans.move_to_end(workload)
                    return self._plans[workload]
                if workload not in self._building:
                    # We own this build; everyone else arriving now waits.
                    self._building.add(workload)
                    self.misses += 1
                    self.builds += 1
                    epoch = self._epoch
                    break
                # Another thread is building this workload: wait for it to
                # finish (or fail, in which case we take over and fail the
                # same way on our own builder call).
                self._cond.wait()
        try:
            plan = builder()  # outside the lock: builders may be slow
        except BaseException:
            with self._cond:
                self._building.discard(workload)
                self._cond.notify_all()
            raise
        with self._cond:
            self._building.discard(workload)
            if epoch == self._epoch:
                # A clear() racing this build invalidates it: the caller
                # still gets a working plan, but a cleared ("cold") cache
                # must not silently re-acquire pre-clear entries.
                self._plans[workload] = plan
                self._plans.move_to_end(workload)
                while len(self._plans) > self.maxsize:
                    self._plans.popitem(last=False)
            self._cond.notify_all()
        return plan

    def clear(self) -> None:
        with self._cond:
            self._epoch += 1
            self._plans.clear()
            self.hits = 0
            self.misses = 0
            self.builds = 0

    def stats(self) -> dict[str, int]:
        with self._cond:
            return {
                "size": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "in_flight": len(self._building),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, workload: Workload) -> bool:
        with self._lock:
            return workload in self._plans


#: The process-wide plan cache every backend kernel shares.
PLAN_CACHE = PlanCache()


def plan_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the global plan cache."""
    return PLAN_CACHE.stats()


def clear_plan_cache() -> None:
    """Drop every cached plan (used by benchmarks to model cold execution)."""
    PLAN_CACHE.clear()
