"""Workload descriptors and the process-wide execution-plan cache.

A :class:`Workload` is a hashable value-object naming one op invocation
shape-class: the op, the operand shapes, the dtype and the static
hyper-parameters (stride/padding/groups, cg/co, ...).  Anything derivable
from a workload alone — window/segment index tables, ``np.einsum_path``
contraction plans, scratch buffers — is computed once, stored in the
:class:`PlanCache`, and reused by every subsequent call with the same
workload.  This is the repo's analog of TVM/topi's per-workload schedule
tables: dispatch keys on *what* is being computed, plans capture *how*.
"""
from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


@dataclass(frozen=True)
class Workload:
    """Hashable descriptor of one kernel-invocation shape-class."""

    op: str
    in_shape: tuple = ()
    weight_shape: tuple = ()
    dtype: str = "float32"
    params: tuple = ()  # sorted (name, value) pairs of static hyper-parameters

    @classmethod
    def make(
        cls,
        op: str,
        in_shape: tuple = (),
        weight_shape: tuple = (),
        dtype: Any = "float32",
        **params: Any,
    ) -> "Workload":
        return cls(
            op=op,
            in_shape=tuple(in_shape),
            weight_shape=tuple(weight_shape),
            # Canonical name so "float32", np.float32 and np.dtype("float32")
            # all key the same plan.
            dtype=np.dtype(dtype).name,
            params=tuple(sorted(params.items())),
        )

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default


class PlanCache:
    """LRU cache mapping :class:`Workload` -> execution plan.

    Plans are built on first use by the ``builder`` passed to
    :meth:`get_or_build`; a builder that raises caches nothing, so invalid
    workloads fail identically on every call.  Hit/miss counters make the
    cache's effect observable (``bench_ablation_plan_cache`` reports them).
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._plans: OrderedDict[Workload, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get_or_build(self, workload: Workload, builder: Callable[[], Any]) -> Any:
        with self._lock:
            if workload in self._plans:
                self.hits += 1
                self._plans.move_to_end(workload)
                return self._plans[workload]
            self.misses += 1
        plan = builder()  # outside the lock: builders may be slow
        with self._lock:
            self._plans[workload] = plan
            self._plans.move_to_end(workload)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
        return plan

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, workload: Workload) -> bool:
        return workload in self._plans


#: The process-wide plan cache every backend kernel shares.
PLAN_CACHE = PlanCache()


def plan_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the global plan cache."""
    return PLAN_CACHE.stats()


def clear_plan_cache() -> None:
    """Drop every cached plan (used by benchmarks to model cold execution)."""
    PLAN_CACHE.clear()
