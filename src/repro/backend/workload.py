"""Workload descriptors and the process-wide execution-plan cache.

A :class:`Workload` is a hashable value-object naming one op invocation
shape-class: the op, the operand shapes, the dtype and the static
hyper-parameters (stride/padding/groups, cg/co, ...).  Anything derivable
from a workload alone — window/segment index tables, ``np.einsum_path``
contraction plans, scratch buffers — is computed once, stored in the
:class:`PlanCache`, and reused by every subsequent call with the same
workload.  This is the repo's analog of TVM/topi's per-workload schedule
tables: dispatch keys on *what* is being computed, plans capture *how*.
"""
from __future__ import annotations

import itertools
import json
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np


# ---------------------------------------------------------------------------
# Plan ownership: which client (e.g. a served model) is driving the cache
# ---------------------------------------------------------------------------

_OWNER = threading.local()


def current_plan_owner() -> str | None:
    """The owner tag cache traffic on this thread is attributed to."""
    return getattr(_OWNER, "name", None)


@contextmanager
def plan_owner(name: str | None) -> Iterator[None]:
    """Attribute plan-cache traffic inside the block to ``name``.

    The serving :class:`repro.serve.Server` wraps plan pre-building and
    batch execution in ``plan_owner(model_name)`` so the shared cache can
    report per-model hit/miss/eviction counts and weight eviction by
    per-model traffic.  The tag is thread-local, so concurrent servers (or
    a server worker next to a trainer) attribute independently; ``None``
    restores the default (unattributed) accounting.
    """
    previous = current_plan_owner()
    _OWNER.name = name
    try:
        yield
    finally:
        _OWNER.name = previous


def _canonical(value: Any) -> Any:
    """Recursively convert a param value to a hashable canonical form.

    Lists, tuples and ndarrays all become (nested) tuples, and numpy scalars
    become Python scalars, so ``padding=[1, 1]``, ``padding=(1, 1)`` and
    ``padding=np.array([1, 1])`` key the same plan instead of raising
    ``TypeError: unhashable type`` at cache-lookup time.
    """
    if isinstance(value, np.ndarray):
        return _canonical(value.tolist())
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass(frozen=True)
class Workload:
    """Hashable descriptor of one kernel-invocation shape-class."""

    op: str
    in_shape: tuple = ()
    weight_shape: tuple = ()
    dtype: str = "float32"
    params: tuple = ()  # sorted (name, value) pairs of static hyper-parameters

    @classmethod
    def make(
        cls,
        op: str,
        in_shape: tuple = (),
        weight_shape: tuple = (),
        dtype: Any = "float32",
        **params: Any,
    ) -> "Workload":
        return cls(
            op=op,
            in_shape=_canonical(tuple(in_shape)),
            weight_shape=_canonical(tuple(weight_shape)),
            # Canonical name so "float32", np.float32 and np.dtype("float32")
            # all key the same plan.
            dtype=np.dtype(dtype).name,
            params=tuple(sorted((k, _canonical(v)) for k, v in params.items())),
        )

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    # -- stable serialization (the persistent plan database's key) -------------

    def to_key(self) -> str:
        """Stable JSON key of this workload, for on-disk plan databases.

        The encoding is canonical — sorted keys, no whitespace — so equal
        workloads always produce byte-identical keys, across processes and
        Python versions.  Only JSON-representable param values are
        supported (ints, floats, strings, bools, None, and nested
        lists/tuples of those), which covers every workload the kernels
        construct; anything else raises ``TypeError`` loudly rather than
        producing an unstable key.
        """
        return json.dumps(
            {
                "op": self.op,
                "in_shape": self.in_shape,
                "weight_shape": self.weight_shape,
                "dtype": self.dtype,
                "params": [[k, v] for k, v in self.params],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_key(cls, key: str) -> "Workload":
        """Rebuild the exact :class:`Workload` a :meth:`to_key` string names.

        Round-trip invariant: ``Workload.from_key(wl.to_key()) == wl`` —
        JSON's list/tuple erasure is undone by the same ``_canonical``
        normalisation :meth:`make` applies, so the reconstructed workload
        hashes and compares identically to the original.
        """
        data = json.loads(key)
        return cls(
            op=data["op"],
            in_shape=_canonical(data["in_shape"]),
            weight_shape=_canonical(data["weight_shape"]),
            dtype=data["dtype"],
            params=tuple((k, _canonical(v)) for k, v in data["params"]),
        )


class PlanCache:
    """LRU cache mapping :class:`Workload` -> execution plan.

    Plans are built on first use by the ``builder`` passed to
    :meth:`get_or_build`; a builder that raises caches nothing, so invalid
    workloads fail identically on every call.  Hit/miss counters make the
    cache's effect observable (``bench_ablation_plan_cache`` reports them).

    Lookups are **single-flight**: when several threads miss the same
    workload concurrently, exactly one runs the (possibly slow) builder
    outside the lock while the others wait and are then served the finished
    plan.  ``misses`` therefore counts true builder invocations — a waiter
    that receives an in-flight build counts as a hit, never as a second
    build — so ``stats()["misses"] == stats()["builds"]`` always holds and
    hit rates stay meaningful under a multi-threaded serving front-end.

    **Ownership and eviction.**  Every access is attributed to the owner
    tag installed by :func:`plan_owner` on the calling thread (``None``
    when untagged), and every resident entry remembers an owner.  Entry
    ownership *follows traffic*: the builder owns the entry initially, and
    every hit re-tags it to the accessing owner — so a plan built by model
    A but since consumed mostly by model B is shielded by B's (current)
    traffic weight and charged to B when it is finally evicted, instead of
    staying pinned to a builder that may have gone idle.  :meth:`owner_stats`
    reports per-owner hit/miss/build/eviction/size counts that sum exactly
    to the global :meth:`stats`.  Eviction is *traffic-weighted* LRU: when
    the cache overflows, the victim is chosen among the
    ``eviction_candidates`` least-recently-used entries as the one whose
    owner has the least (exponentially decayed) traffic — so a hot model's
    plans survive a cold model churning through the tail, while
    single-owner workloads degrade to exact LRU.

    **Per-owner floor.**  ``owner_floor=K`` reserves a hard quota: an entry
    whose owner holds ``K`` or fewer resident entries is never evicted, so
    a cold model keeps (at least) its last ``K`` plans no matter how hard a
    hot model churns the cache.  When every candidate is protected the scan
    widens over the full LRU order (still sparing the just-built MRU
    entry); only if *every* entry in the cache is protected — the floors
    alone exceed capacity — does eviction fall back to the unprotected
    traffic-weighted choice, because ``maxsize`` is a hard bound.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        eviction_candidates: int = 8,
        traffic_decay_every: int = 4096,
        owner_floor: int = 0,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if eviction_candidates < 1:
            raise ValueError(
                f"eviction_candidates must be >= 1, got {eviction_candidates}"
            )
        if owner_floor < 0:
            raise ValueError(f"owner_floor must be >= 0, got {owner_floor}")
        self.maxsize = maxsize
        self.eviction_candidates = eviction_candidates
        self.traffic_decay_every = traffic_decay_every
        self.owner_floor = owner_floor
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0
        self._plans: OrderedDict[Workload, Any] = OrderedDict()
        self._entry_owner: dict[Workload, str | None] = {}
        self._owner_sizes: dict[str | None, int] = {}  # resident entries per owner
        self._owner_stats: dict[str | None, dict[str, int]] = {}
        self._traffic: dict[str | None, float] = {}  # decayed eviction weights
        self._accesses_since_decay = 0
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._building: set[Workload] = set()
        self._epoch = 0  # bumped by clear(): in-flight builds must not insert

    # -- owner accounting (all called with the lock held) ----------------------

    def _owner_acc(self, owner: str | None) -> dict[str, int]:
        acc = self._owner_stats.get(owner)
        if acc is None:
            acc = self._owner_stats[owner] = {
                "hits": 0, "misses": 0, "builds": 0, "evictions": 0,
            }
        return acc

    #: Decayed owner weights below this, with no resident entries, are pruned.
    TRAFFIC_EPSILON = 1e-3

    def _record_access(self, owner: str | None, kind: str) -> None:
        self._owner_acc(owner)[kind] += 1
        self._traffic[owner] = self._traffic.get(owner, 0.0) + 1.0
        self._accesses_since_decay += 1
        if self._accesses_since_decay >= self.traffic_decay_every:
            # Halve every owner's weight so "hot" tracks *recent* traffic: a
            # model that stopped receiving requests stops shielding its plans.
            # Owners whose weight has decayed to irrelevance and who hold no
            # resident entry are dropped entirely — otherwise ephemeral
            # owner names (per-request or per-test servers) grow this dict
            # without bound over the cache's lifetime.
            self._accesses_since_decay = 0
            for key in list(self._traffic):
                self._traffic[key] *= 0.5
                if (
                    self._traffic[key] < self.TRAFFIC_EPSILON
                    and self._owner_sizes.get(key, 0) <= 0
                ):
                    del self._traffic[key]
                    self._owner_sizes.pop(key, None)

    def _retag_entry(self, workload: Workload, owner: str | None) -> None:
        previous = self._entry_owner.get(workload)
        if workload in self._entry_owner and previous == owner:
            return
        if workload in self._entry_owner:
            self._owner_sizes[previous] = self._owner_sizes.get(previous, 1) - 1
        self._entry_owner[workload] = owner
        self._owner_sizes[owner] = self._owner_sizes.get(owner, 0) + 1

    def _floor_protected(self, workload: Workload) -> bool:
        owner = self._entry_owner.get(workload)
        return self._owner_sizes.get(owner, 0) <= self.owner_floor

    def _evict_one(self) -> None:
        """Drop the least-traffic-owner entry among the LRU candidates.

        The MRU entry is never a candidate: on the insert-overflow path it
        is the plan that was *just built*, and evicting it would doom a
        low-traffic owner on a small cache to a permanent build-evict-build
        cycle (miss churn with a 0% hit rate) whenever the cache is no
        larger than the candidate window.
        """
        window = min(self.eviction_candidates, len(self._plans) - 1)
        candidates = list(itertools.islice(self._plans, window))
        pool = candidates
        if self.owner_floor > 0:
            pool = [wl for wl in candidates if not self._floor_protected(wl)]
            if not pool:
                # Candidate window all floor-protected: widen over the full
                # LRU order (minus the just-built MRU entry) for the first
                # evictable entry.
                for wl in itertools.islice(self._plans, len(self._plans) - 1):
                    if not self._floor_protected(wl):
                        pool = [wl]
                        break
                else:
                    # Floors alone exceed capacity: maxsize is a hard bound,
                    # so fall back to the unprotected choice.
                    pool = candidates
        # min() is stable and the candidates iterate oldest-first, so ties
        # (same owner, or equal-traffic owners) fall back to exact LRU.
        victim = min(
            pool,
            key=lambda wl: self._traffic.get(self._entry_owner.get(wl), 0.0),
        )
        del self._plans[victim]
        owner = self._entry_owner.pop(victim, None)
        self._owner_sizes[owner] = self._owner_sizes.get(owner, 1) - 1
        self.evictions += 1
        self._owner_acc(owner)["evictions"] += 1

    # -- lookup ----------------------------------------------------------------

    def get_or_build(self, workload: Workload, builder: Callable[[], Any]) -> Any:
        owner = current_plan_owner()
        with self._cond:
            while True:
                if workload in self._plans:
                    self.hits += 1
                    self._record_access(owner, "hits")
                    self._plans.move_to_end(workload)
                    # Re-ownership on hit: the entry now belongs to whoever
                    # is actually consuming it (see class docstring).
                    self._retag_entry(workload, owner)
                    return self._plans[workload]
                if workload not in self._building:
                    # We own this build; everyone else arriving now waits.
                    self._building.add(workload)
                    self.misses += 1
                    self.builds += 1
                    acc = self._owner_acc(owner)
                    acc["builds"] += 1
                    self._record_access(owner, "misses")
                    epoch = self._epoch
                    break
                # Another thread is building this workload: wait for it to
                # finish (or fail, in which case we take over and fail the
                # same way on our own builder call).
                self._cond.wait()
        try:
            plan = builder()  # outside the lock: builders may be slow
        except BaseException:
            with self._cond:
                self._building.discard(workload)
                self._cond.notify_all()
            raise
        with self._cond:
            self._building.discard(workload)
            if epoch == self._epoch:
                # A clear() racing this build invalidates it: the caller
                # still gets a working plan, but a cleared ("cold") cache
                # must not silently re-acquire pre-clear entries.
                self._plans[workload] = plan
                self._plans.move_to_end(workload)
                self._retag_entry(workload, owner)
                while len(self._plans) > self.maxsize:
                    self._evict_one()
            self._cond.notify_all()
        return plan

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        with self._cond:
            self._epoch += 1
            self._plans.clear()
            self._entry_owner.clear()
            self._owner_sizes.clear()
            self._owner_stats.clear()
            self._traffic.clear()
            self._accesses_since_decay = 0
            self.hits = 0
            self.misses = 0
            self.builds = 0
            self.evictions = 0

    def resize(self, maxsize: int) -> None:
        """Change the capacity in place, evicting down if shrinking.

        The serving stress/soak tests (and capacity experiments) bound the
        *global* cache this way instead of swapping the singleton out from
        under live servers.
        """
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        with self._cond:
            self.maxsize = maxsize
            while len(self._plans) > self.maxsize:
                self._evict_one()

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict[str, int]:
        with self._cond:
            return {
                "size": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "evictions": self.evictions,
                "in_flight": len(self._building),
            }

    def owner_stats(self) -> dict[str | None, dict[str, int]]:
        """Per-owner accounting: hit/miss/build counts by *accessor*,
        evictions and resident ``size`` by the entry's current owner (the
        builder until the first hit re-tags it to the consuming owner).

        Each global counter in :meth:`stats` equals the sum of the matching
        per-owner counter (untagged traffic lands on the ``None`` owner), so
        a multi-model router can reconcile its per-model view against the
        process-wide one.
        """
        with self._cond:
            out = {owner: dict(acc) for owner, acc in self._owner_stats.items()}
            for owner in self._entry_owner.values():
                if owner not in out:
                    out[owner] = {"hits": 0, "misses": 0, "builds": 0, "evictions": 0}
            for acc in out.values():
                acc["size"] = 0
            for owner in self._entry_owner.values():
                out[owner]["size"] += 1
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, workload: Workload) -> bool:
        with self._lock:
            return workload in self._plans


#: The process-wide plan cache every backend kernel shares.
PLAN_CACHE = PlanCache()


def plan_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the global plan cache."""
    return PLAN_CACHE.stats()


def plan_cache_owner_stats() -> dict[str | None, dict[str, int]]:
    """Per-owner counters of the global plan cache (see ``plan_owner``)."""
    return PLAN_CACHE.owner_stats()


def clear_plan_cache() -> None:
    """Drop every cached plan (used by benchmarks to model cold execution)."""
    PLAN_CACHE.clear()
