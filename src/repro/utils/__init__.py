"""Shared utilities: seeding, timing harness, formatting helpers."""
from repro.utils.rng import seed_all, get_rng
from repro.utils.timing import Timer, time_callable, MeasuredTime
from repro.utils.tables import format_table, format_float, human_count

__all__ = [
    "seed_all",
    "get_rng",
    "Timer",
    "time_callable",
    "MeasuredTime",
    "format_table",
    "format_float",
    "human_count",
]
