"""Plain-text table rendering for benchmark harnesses.

Every benchmark prints the same rows/series the paper reports; these helpers
keep that output aligned and copy-pasteable without pulling in a plotting
dependency (the environment is offline and headless).
"""
from __future__ import annotations

from typing import Iterable, Sequence


def format_float(value: float, digits: int = 2) -> str:
    """Fixed-point formatting that keeps tiny values visible."""
    if value != 0 and abs(value) < 10 ** (-digits):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}f}"


def human_count(n: float) -> str:
    """Render a parameter/FLOP count the way the paper does (e.g. '14.73M')."""
    if n >= 1e9:
        return f"{n / 1e9:.2f}G"
    if n >= 1e6:
        return f"{n / 1e6:.2f}M"
    if n >= 1e3:
        return f"{n / 1e3:.2f}K"
    return f"{n:.0f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
