"""Wall-clock measurement harness.

The paper reports "the averaged running time of 100 measurements under the
same setting" (Section V-A).  :func:`time_callable` mirrors that protocol:
warmup iterations followed by ``repeats`` timed iterations, reporting mean,
median and spread so benchmark noise is visible rather than hidden.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class MeasuredTime:
    """Summary statistics (seconds) for a repeated timing run."""

    samples: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def median(self) -> float:
        s = sorted(self.samples)
        n = len(s)
        mid = n // 2
        return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MeasuredTime(mean={self.mean * 1e3:.3f}ms, "
            f"median={self.median * 1e3:.3f}ms, n={len(self.samples)})"
        )


class Timer:
    """Context-manager stopwatch accumulating elapsed wall time."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None


def time_callable(
    fn: Callable[[], Any],
    repeats: int = 10,
    warmup: int = 2,
) -> MeasuredTime:
    """Time ``fn()`` following the paper's warmup-then-average protocol."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    result = MeasuredTime()
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        result.samples.append(time.perf_counter() - start)
    return result
