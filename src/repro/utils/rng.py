"""Deterministic random-number management.

Every stochastic component in the library (weight init, synthetic data,
shuffling) draws from a ``numpy.random.Generator`` so experiments are exactly
reproducible from a single seed.
"""
from __future__ import annotations

import random

import numpy as np

_GLOBAL_SEED = 0
_GLOBAL_RNG = np.random.default_rng(_GLOBAL_SEED)


def seed_all(seed: int) -> None:
    """Seed every RNG the library uses (numpy global generator + stdlib)."""
    global _GLOBAL_SEED, _GLOBAL_RNG
    _GLOBAL_SEED = int(seed)
    _GLOBAL_RNG = np.random.default_rng(_GLOBAL_SEED)
    random.seed(_GLOBAL_SEED)
    np.random.seed(_GLOBAL_SEED % (2**32))


def get_rng(seed: int | None = None) -> np.random.Generator:
    """Return the library RNG, or an independent stream when ``seed`` given."""
    if seed is None:
        return _GLOBAL_RNG
    return np.random.default_rng(seed)
