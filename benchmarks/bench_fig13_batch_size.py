"""Figure 13 — time per batch vs training batch size (16..1024).

Paper: below ~128 the time-per-batch barely grows (not enough active
threads to saturate the SMs); above, it grows ~linearly.  VGG16, MobileNet,
ResNet18 at cg=2 co=50%.
"""
import numpy as np

from common import emit, full_mode
from repro.gpusim import extract_layer_shapes, tesla_v100, training_step_time
from repro.models import build_model
from repro.tensor import Tensor
from repro.train import cross_entropy
from repro.utils import format_table, seed_all, time_callable

BATCHES = (16, 32, 64, 128, 256, 512, 1024)
MODELS = ("vgg16", "mobilenet", "resnet18")


def modelled_sweep(device):
    rows = {}
    for name in MODELS:
        model = build_model(name, scheme="scc", cg=2, co=0.5)
        shapes = extract_layer_shapes(model, (3, 32, 32))
        rows[name] = [training_step_time(shapes, b, device).total for b in BATCHES]
    return rows


def measured_sweep(name="mobilenet"):
    seed_all(29)
    model = build_model(name, scheme="scc", cg=2, co=0.5, width_mult=0.125)
    rng = np.random.default_rng(0)
    batches = (8, 16, 32, 64) if not full_mode() else (8, 16, 32, 64, 128)
    out = []
    for b in batches:
        x = Tensor(rng.standard_normal((b, 3, 16, 16)).astype(np.float32))
        labels = rng.integers(0, 10, b)

        def step():
            model.zero_grad()
            cross_entropy(model(x), labels).backward()

        out.append((b, time_callable(step, repeats=3, warmup=1).median))
    return out


def report_fig13(device=None):
    device = device or tesla_v100()
    rows = modelled_sweep(device)
    text = format_table(
        ["Model"] + [str(b) for b in BATCHES],
        [[n] + [f"{t * 1e3:.1f}" for t in series] for n, series in rows.items()],
        title="Fig 13 — time per batch (ms) vs batch size (simulated V100, cg2 co50%)",
    )
    knees = {
        n: (series[3] / series[0], series[-1] / series[3]) for n, series in rows.items()
    }
    text += "\nGrowth 16->128 vs 128->1024: " + ", ".join(
        f"{n}: {a:.1f}x then {b:.1f}x" for n, (a, b) in knees.items()
    )
    meas = measured_sweep()
    text += "\n\nMeasured on this CPU (width-0.125 MobileNet; CPUs have no\n"
    text += "occupancy knee, so growth is linear throughout — shown for scale):\n"
    text += format_table(["Batch", "step (ms)"], [[b, f"{t * 1e3:.1f}"] for b, t in meas])
    text += ("\nExpected shape (paper): flat region below ~128 (SM under-"
             "saturation), then near-linear growth.")
    return emit("fig13_batch_size", text), rows


def test_fig13_knee_shape(device):
    _, rows = report_fig13(device)
    for name, series in rows.items():
        early_growth = series[3] / series[0]        # 16 -> 128 (8x batch)
        late_growth = series[-1] / series[3]        # 128 -> 1024 (8x batch)
        assert early_growth < 8.0, name             # sub-linear early
        assert late_growth > early_growth, name     # steeper once saturated


def test_fig13_step_model_speed(benchmark, device):
    model = build_model("resnet18", scheme="scc", cg=2, co=0.5)
    shapes = extract_layer_shapes(model, (3, 32, 32))
    benchmark(training_step_time, shapes, 256, device)


if __name__ == "__main__":
    report_fig13()
