"""Table IV — MobileNet ablation: DW+PW vs DW+GPW-cgX vs DW+SCC-cgX-coY%.

The paper's detailed study.  Cost columns are exact (full-size MobileNet at
CIFAR geometry); accuracy columns come from width-reduced variants on the
synthetic task.  The reproducible shapes:

- cost(GPW-cgX) == cost(SCC-cgX-*) < cost(PW), scaling ~1/X in the PW stage;
- co changes accuracy but not cost;
- acc(SCC-cgX) > acc(GPW-cgX) at every X (overlap recovers information);
- larger cg -> cheaper but (eventually) less accurate.
"""
from common import emit, full_mode, reduced_training_setup, train_and_score
from repro.analysis import profile_model
from repro.models import build_model
from repro.utils import format_table, seed_all

# (scheme, cg, co, paper MFLOPs, paper params M, paper acc %)
PAPER_TABLE4 = [
    ("pw", 1, 0.0, 50, 6.17, 92.05),
    ("gpw", 2, 0.0, 30, 0.59, 90.11),
    ("gpw", 4, 0.0, 20, 0.32, 88.88),
    ("gpw", 8, 0.0, 10, 0.18, 82.69),
    ("scc", 2, 1 / 3, 30, 0.59, 91.20),
    ("scc", 2, 0.5, 30, 0.59, 92.56),
    ("scc", 4, 1 / 3, 20, 0.32, 91.71),
    ("scc", 4, 0.5, 20, 0.32, 91.39),
    ("scc", 8, 1 / 3, 10, 0.18, 90.71),
    ("scc", 8, 0.5, 10, 0.18, 90.25),
]


def _label(scheme, cg, co):
    if scheme == "pw":
        return "Baseline (DW+PW)"
    if scheme == "gpw":
        return f"DW+GPW-cg{cg}"
    return f"DW+SCC-cg{cg}-co{round(co * 100)}%"


def analytic_rows():
    rows = []
    for scheme, cg, co, pf, pp, pa in PAPER_TABLE4:
        model = build_model("mobilenet", scheme=scheme, cg=cg, co=co)
        prof = profile_model(model, (3, 32, 32))
        rows.append((_label(scheme, cg, co), prof.mflops, prof.params_m, pf, pp, pa))
    return rows


def trained_rows(configs=None):
    """Mini-MobileNet protocol, averaged over seeds (see EXPERIMENTS.md)."""
    import numpy as np

    from common import accuracy_protocol
    from repro.models import build_mobilenet

    configs = configs or ([(s, g, c) for s, g, c, *_ in PAPER_TABLE4] if full_mode()
                          else [("pw", 1, 0.0), ("gpw", 4, 0.0), ("scc", 4, 0.5)])
    epochs = 10 if full_mode() else 7
    seeds = (42, 43, 44) if full_mode() else (42, 43)
    out = []
    for scheme, cg, co in configs:
        accs = []
        for seed in seeds:
            train_loader, test_loader = accuracy_protocol(seed=5)
            seed_all(seed)
            model = build_mobilenet(scheme=scheme, cg=cg, co=co, width_mult=0.5,
                                    num_blocks=4, num_classes=10, in_channels=8)
            accs.append(train_and_score(model, train_loader, test_loader, epochs, lr=0.1))
        out.append((_label(scheme, cg, co), float(np.mean(accs))))
    return out


def report_table4(with_accuracy=True):
    rows = analytic_rows()
    text = format_table(
        ["Network", "MFLOPs (ours)", "Param (ours)", "MFLOPs (paper)",
         "Param (paper)", "Acc (paper)"],
        [[l, f"{f:.1f}", f"{p:.2f}M", f"{pf}", f"{pp}M", f"{pa}"]
         for l, f, p, pf, pp, pa in rows],
        title="Table IV — MobileNet ablation, full-size cost columns",
    )
    trained = []
    if with_accuracy:
        trained = trained_rows()
        text += "\nTrained accuracy (mini MobileNet, 8-ch synthetic task, seed-averaged):\n"
        text += format_table(["Network", "Best test acc (mean)"],
                             [[l, f"{a:.3f}"] for l, a in trained])
        text += ("\nExpected shape: SCC-cgX >= GPW-cgX at identical cost.  On this"
                 "\nsynthetic proxy the gap is within seed noise (paper's CIFAR gaps"
                 "\nare 1-3%); see EXPERIMENTS.md for the honest comparison.")
    return emit("table4_mobilenet_ablation", text), rows, trained


def test_table4_cost_structure():
    _, rows, _ = report_table4(with_accuracy=False)
    by_label = {l: (f, p) for l, f, p, *_ in rows}
    # GPW-cgX and SCC-cgX-* have identical costs.
    for cg in (2, 4, 8):
        gpw = by_label[f"DW+GPW-cg{cg}"]
        for co in (33, 50):
            scc = by_label[f"DW+SCC-cg{cg}-co{co}%"]
            assert abs(gpw[0] - scc[0]) < 1e-6
            assert abs(gpw[1] - scc[1]) < 1e-9
    # Cost falls monotonically with cg.
    flops = [by_label[f"DW+GPW-cg{cg}"][0] for cg in (2, 4, 8)]
    assert flops[0] > flops[1] > flops[2]
    # All cheaper than the PW baseline.
    assert all(f < by_label["Baseline (DW+PW)"][0] for f in flops)


def test_table4_scc_beats_gpw_at_equal_cost():
    _, _, trained = report_table4(with_accuracy=True)
    accs = dict(trained)
    assert accs["DW+SCC-cg4-co50%"] >= accs["DW+GPW-cg4"] - 0.05


def test_table4_profile_speed(benchmark):
    model = build_model("mobilenet", scheme="scc", cg=4, co=0.5)
    benchmark.pedantic(lambda: profile_model(model, (3, 32, 32)), rounds=2, iterations=1)


if __name__ == "__main__":
    report_table4()
