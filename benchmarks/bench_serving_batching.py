"""Serving (beyond the paper's figures) — shape-bucketed request batching.

The ROADMAP's heavy-traffic scenario: a stream of single-image inference
requests.  *Naive* serving runs each request as its own batch-1 forward.
The :mod:`repro.serve` front-end instead coalesces requests into
shape-bucketed batches that execute on pre-built inference
:class:`~repro.backend.ModelPlan` entries, so the whole serving window runs
on plan-cache hits and every batch amortises per-layer Python/framework
overhead across its bucket.

Reported per bucket configuration: throughput vs the naive baseline (the
ratio is the headline — machine-robust for the perf-trajectory comparator),
p50/p95 latency, plan-cache hit rate and bucket fill.
"""
import numpy as np

from common import emit, full_mode
from repro.backend import plan_cache_stats
from repro.models import build_model
from repro.serve import Server, ServerConfig
from repro.tensor import Tensor, no_grad
from repro.utils import Timer, format_table, seed_all

INPUT = (3, 16, 16)


def _model():
    seed_all(23)
    return build_model("mobilenet", scheme="scc", width_mult=0.25,
                       rng=np.random.default_rng(23)).eval()


def _requests(n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(INPUT).astype(np.float32) for _ in range(n)]


def naive_throughput(model, images) -> float:
    """Per-request batch-1 inference (warm plans; the fairest baseline)."""
    with no_grad():
        model(Tensor(images[0][None]))  # warm the batch-1 plans
        timer = Timer()
        with timer:
            for image in images:
                model(Tensor(image[None]))
    return len(images) / timer.elapsed


def bucketed_run(model, images, bucket_sizes, max_latency=0.05):
    """Serve the same stream through the bucketing front-end."""
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=bucket_sizes,
                                        max_latency=max_latency))
    server.reset_metrics()
    timer = Timer()
    with timer:
        for image in images:
            server.submit(image)
        server.flush()
    metrics = server.metrics()
    return len(images) / timer.elapsed, metrics


def report_serving_batching():
    num_requests = 256 if full_mode() else 96
    model = _model()
    images = _requests(num_requests)

    base_throughput = naive_throughput(model, images)
    rows = []
    for buckets in [(1,), (1, 2, 4), (1, 2, 4, 8), (1, 2, 4, 8, 16)]:
        throughput, metrics = bucketed_run(model, images, buckets)
        rows.append({
            "buckets": "/".join(map(str, buckets)),
            "throughput_rps": round(throughput, 1),
            "throughput_ratio": round(throughput / base_throughput, 3),
            "p50_ms": round(metrics.latency_p50 * 1e3, 3),
            "p95_ms": round(metrics.latency_p95 * 1e3, 3),
            "hit_rate": round(metrics.plan_cache_hit_rate, 4),
            "bucket_fill": round(metrics.mean_bucket_fill, 3),
        })

    table = format_table(
        ["Buckets", "req/s", "vs naive", "p50 (ms)", "p95 (ms)",
         "plan hit rate", "bucket fill"],
        [[r["buckets"], f"{r['throughput_rps']:.1f}", f"{r['throughput_ratio']:.2f}x",
          f"{r['p50_ms']:.2f}", f"{r['p95_ms']:.2f}", f"{r['hit_rate']:.3f}",
          f"{r['bucket_fill']:.2f}"] for r in rows],
        title="Serving — shape-bucketed batching on warm model plans "
              f"({num_requests} single-image requests)",
    )
    table += (
        f"\nNaive per-request baseline: {base_throughput:.1f} req/s (batch-1"
        "\nforwards, plans warm).  Bucketed serving pre-builds one inference"
        "\nModelPlan per (shape, bucket) so the whole window runs on cache hits;"
        "\nbigger buckets amortise per-layer dispatch across more requests."
    )
    data = {
        "naive_rps": base_throughput,
        "rows": rows,
        "cache": plan_cache_stats(),
    }
    return emit("serving_batching", table, data=data), rows


def test_bucketed_serving_beats_naive_with_warm_plans():
    _, rows = report_serving_batching()
    best = max(r["throughput_ratio"] for r in rows)
    assert best >= 2.0, rows
    # Every bucketed window after warmup serves >= 95% from the plan cache.
    assert all(r["hit_rate"] >= 0.95 for r in rows), rows


def test_serving_bucketed_8(benchmark):
    model = _model()
    images = _requests(32, seed=5)
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(1, 2, 4, 8)))

    def serve_stream():
        for image in images:
            server.submit(image)
        server.flush()

    serve_stream()
    benchmark(serve_stream)


def test_serving_naive_per_request(benchmark):
    model = _model()
    images = _requests(32, seed=5)

    def serve_naive():
        with no_grad():
            for image in images:
                model(Tensor(image[None]))

    serve_naive()
    benchmark(serve_naive)


if __name__ == "__main__":
    report_serving_batching()
