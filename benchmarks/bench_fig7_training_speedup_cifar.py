"""Figure 7 — CIFAR-10 training speedup over Pytorch-Base.

Both of the paper's setting families on all five CNNs:
(a) cg in {2,4,8} at co=50%;  (b) co in {25%,50%,75%} at cg=2.

Modelled numbers run the full-size networks through the V100 execution
model; the measured column repeats the comparison with real NumPy kernels
on a width-reduced VGG16 (forward+backward wall time per step).
"""
import numpy as np

from common import emit, full_mode
from repro.core.blocks import set_scc_impl
from repro.gpusim import extract_layer_shapes, tesla_v100, training_step_time
from repro.models import build_model
from repro.models.registry import PAPER_MODELS
from repro.tensor import Tensor
from repro.train import cross_entropy
from repro.utils import format_table, seed_all, time_callable

SETTINGS_A = [(2, 0.5), (4, 0.5), (8, 0.5)]
SETTINGS_B = [(2, 0.25), (2, 0.5), (2, 0.75)]
BATCH = 128


def modelled_speedups(device, settings):
    rows = []
    for name in PAPER_MODELS:
        for cg, co in settings:
            model = build_model(name, scheme="scc", cg=cg, co=co)
            shapes = extract_layer_shapes(model, (3, 32, 32))
            t = {
                s: training_step_time(shapes, BATCH, device, scc_strategy=s).total
                for s in ("channel_stack", "conv_stack", "dsxplore")
            }
            rows.append(
                (name, cg, round(co * 100),
                 t["channel_stack"] / t["conv_stack"],
                 t["channel_stack"] / t["dsxplore"])
            )
    return rows


def measured_speedup(name="vgg16", cg=2, co=0.5):
    """Real NumPy-kernel training-step times, reduced model."""
    seed_all(23)
    model = build_model(name, scheme="scc", cg=cg, co=co, width_mult=0.125)
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((8, 3, 32, 32)).astype(np.float32))
    labels = rng.integers(0, 10, 8)

    def step():
        model.zero_grad()
        loss = cross_entropy(model(x), labels)
        loss.backward()

    times = {}
    repeats = 5 if full_mode() else 3
    for strategy, bwd in [("channel_stack", None), ("conv_stack", None),
                          ("dsxplore", "input_centric")]:
        set_scc_impl(model, strategy, bwd)
        times[strategy] = time_callable(step, repeats=repeats, warmup=1).median
    return times


def report_fig7(device=None):
    device = device or tesla_v100()
    text_parts = []
    for title, settings in [("(a) cg sweep at co=50%", SETTINGS_A),
                            ("(b) co sweep at cg=2", SETTINGS_B)]:
        rows = modelled_speedups(device, settings)
        text_parts.append(format_table(
            ["Model", "cg", "co%", "Pytorch-Opt (x)", "DSXplore (x)"],
            [[n, g, c, f"{o:.2f}", f"{d:.2f}"] for n, g, c, o, d in rows],
            title=f"Fig 7{title} — speedup over Pytorch-Base (simulated V100, batch {BATCH})",
        ))
    measured = measured_speedup()
    base = measured["channel_stack"]
    text_parts.append(format_table(
        ["Implementation", "step (ms)", "speedup vs Base"],
        [[k, f"{v * 1e3:.1f}", f"{base / v:.2f}x"] for k, v in measured.items()],
        title="Measured on this CPU — width-0.125 VGG16, cg=2 co=50%, real kernels",
    ))
    text = "\n\n".join(text_parts)
    text += ("\n\nExpected shape (paper): DSXplore fastest everywhere "
             "(paper avg 5.68x over Base, 2.34x over Opt); gains larger on "
             "VGG (all-standard-conv) than ResNet (PW-heavy blocks).")
    return emit("fig7_training_speedup_cifar", text), modelled_speedups(device, SETTINGS_A), measured


def test_fig7_ordering(device):
    _, rows, measured = report_fig7(device)
    opts = []
    for name, cg, co, opt_x, dsx_x in rows:
        # DSXplore fastest everywhere (paper headline).
        assert dsx_x > 1.0 and dsx_x > opt_x, (name, cg, co)
        # Opt beats Base in the paper's common config (cg=2); at cg=8 the
        # per-cycle op count (cyclic_dist grows with cg) can erode its edge
        # on narrow ResNet layers, so we only require the average to hold.
        if cg == 2:
            assert opt_x > 1.0, (name, cg, co)
        opts.append(opt_x)
    assert sum(opts) / len(opts) > 1.0
    # Measured ordering on real kernels: Base clearly slowest; DSXplore at
    # least ties Opt (on the width-reduced model the SCC layers are a small
    # share of step time, so Opt and DSXplore sit within timing noise).
    assert measured["channel_stack"] > 1.2 * measured["conv_stack"]
    assert measured["dsxplore"] <= measured["conv_stack"] * 1.10


def test_fig7_vgg_gains_exceed_resnet(device):
    rows = modelled_speedups(device, [(2, 0.5)])
    by_model = {n: d for n, _, _, _, d in rows}
    assert by_model["vgg16"] > by_model["resnet50"]


def test_fig7_measured_step(benchmark):
    seed_all(23)
    model = build_model("vgg16", scheme="scc", cg=2, co=0.5, width_mult=0.125)
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((8, 3, 32, 32)).astype(np.float32))
    labels = rng.integers(0, 10, 8)

    def step():
        model.zero_grad()
        cross_entropy(model(x), labels).backward()

    benchmark.pedantic(step, rounds=3, iterations=1, warmup_rounds=1)


if __name__ == "__main__":
    report_fig7()
