"""Figure 12 — runtime vs input-channel overlap ratio (co), cg=2.

Paper: co has *no evident impact* on runtime — the overlap changes which
channels each thread reads, not how much work it does.  Normalized to
co=10%.  We sweep the paper's 10%..90% grid, modelled and measured.
"""
import numpy as np

from common import emit, full_mode
from repro.core.channel_map import SCCConfig
from repro.core.scc_kernels import Dsxplore
from repro.gpusim import extract_layer_shapes, tesla_v100, training_step_time
from repro.models import build_model
from repro.models.registry import PAPER_MODELS
from repro.utils import format_table, time_callable

COS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
BATCH = 128


def modelled_sweep(device, models=PAPER_MODELS):
    rows = {}
    for name in models:
        times = []
        for co in COS:
            model = build_model(name, scheme="scc", cg=2, co=co)
            shapes = extract_layer_shapes(model, (3, 32, 32))
            times.append(training_step_time(shapes, BATCH, device).total)
        rows[name] = [t / times[0] for t in times]
    return rows


def measured_sweep(cin=64, cout=128, hw=16, n=8):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((n, cin, hw, hw)).astype(np.float32)
    g = rng.standard_normal((n, cout, hw, hw)).astype(np.float32)
    times = []
    repeats = 15 if full_mode() else 5
    for co in COS:
        cfg = SCCConfig(cin, cout, 2, co)
        w = rng.standard_normal((cout, cfg.group_width)).astype(np.float32)
        strat = Dsxplore(cfg)

        def step():
            strat.forward(x, w)
            strat.backward(g)

        times.append(time_callable(step, repeats=repeats, warmup=2).median)
    return [t / times[0] for t in times]


def report_fig12(device=None):
    device = device or tesla_v100()
    rows = modelled_sweep(device)
    text = format_table(
        ["Model"] + [f"{round(c * 100)}%" for c in COS],
        [[n] + [f"{x:.0%}" for x in series] for n, series in rows.items()],
        title="Fig 12 — runtime vs co, normalized to co=10% (simulated V100, cg=2)",
    )
    meas = measured_sweep()
    text += "\n\nMeasured real kernels (one layer, 64->128, 16x16):\n"
    text += format_table([f"{round(c * 100)}%" for c in COS],
                         [[f"{x:.0%}" for x in meas]])
    text += (
        "\nExpected shape (paper): flat — overlap ratio does not change "
        "per-thread workload\n(fluctuations are cache/data-reuse noise).  The modelled "
        "series is flat; the CPU\nmeasurement fluctuates more because co determines "
        "cyclic_dist, and the CPU analog\nbatches its GEMMs per cycle position — "
        "another CPU-only artifact (the fused GPU\nkernel's thread workload is "
        "co-independent, which is what the model captures)."
    )
    return emit("fig12_overlap_sweep", text), rows, meas


def test_fig12_flat_within_band(device):
    _, rows, meas = report_fig12(device)
    for name, series in rows.items():
        assert max(series) - min(series) < 0.15, (name, series)
    # Measured CPU kernels: no systematic *monotone* growth with co — the
    # endpoints stay comparable even though cyclic_dist-induced GEMM batching
    # makes the middle noisy.
    import numpy as np

    slope = np.polyfit(COS, meas, 1)[0]
    assert abs(slope) < 2.0, meas


def test_fig12_layer_step(benchmark):
    cfg = SCCConfig(64, 128, 2, 0.7)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 64, 16, 16)).astype(np.float32)
    w = rng.standard_normal((128, 32)).astype(np.float32)
    strat = Dsxplore(cfg)
    benchmark(strat.forward, x, w)


if __name__ == "__main__":
    report_fig12()
