"""Table III — ImageNet ResNet50: Origin vs DSXplore.

Analytic costs use the real ImageNet geometry (224x224, 1000 classes,
7x7-stride-2 stem).  The accuracy pair trains reduced models on the
ImageNet stand-in task (100 classes).
"""
from common import emit, full_mode, reduced_training_setup, train_and_score
from repro.analysis import profile_model
from repro.models import build_model
from repro.utils import format_table, seed_all

PAPER_TABLE3 = {"origin": (4130.0, 23.67), "dsxplore": (2550.0, 14.34)}


def analytic_costs():
    origin = profile_model(
        build_model("resnet50", num_classes=1000, imagenet_stem=True), (3, 224, 224)
    )
    dsx = profile_model(
        build_model("resnet50", scheme="scc", cg=2, co=0.5, num_classes=1000,
                    imagenet_stem=True),
        (3, 224, 224),
    )
    return origin, dsx


def report_table3(with_accuracy=True):
    origin, dsx = analytic_costs()
    rows = [
        ["Origin", f"{origin.mflops:.0f}", f"{origin.params_m:.2f}M",
         f"{PAPER_TABLE3['origin'][0]:.0f}", f"{PAPER_TABLE3['origin'][1]:.2f}M"],
        ["DSXplore", f"{dsx.mflops:.0f}", f"{dsx.params_m:.2f}M",
         f"{PAPER_TABLE3['dsxplore'][0]:.0f}", f"{PAPER_TABLE3['dsxplore'][1]:.2f}M"],
    ]
    text = format_table(
        ["Network", "MFLOPs (ours)", "Param (ours)", "MFLOPs (paper)", "Param (paper)"],
        rows,
        title="Table III — ResNet50 on ImageNet geometry (224x224, 1000 classes)",
    )
    red_f = 1 - dsx.mflops / origin.mflops
    red_p = 1 - dsx.total_params / origin.total_params
    text += (
        f"\nReductions: FLOPs {red_f:.1%} (paper: 38.25%), "
        f"params {red_p:.1%} (paper: 39.41%)."
    )
    if with_accuracy:
        from common import accuracy_protocol, build_mini

        epochs = 10 if full_mode() else 7
        train_loader, test_loader = accuracy_protocol(seed=4)
        seed_all(11)
        acc_o = train_and_score(build_mini("resnet50"),
                                train_loader, test_loader, epochs, lr=0.1)
        seed_all(11)
        acc_d = train_and_score(build_mini("resnet50", scheme="scc", cg=2, co=0.5),
                                train_loader, test_loader, epochs, lr=0.1)
        text += (
            f"\nMini-ResNet50 accuracy on the synthetic stand-in (chance 0.10): "
            f"origin {acc_o:.3f}, DSXplore {acc_d:.3f} (paper: 76.56 -> 75.91, i.e."
            f" a small drop at ~40% cost reduction)."
        )
    return emit("table3_imagenet_resnet50", text), origin, dsx


def test_table3_reductions_match_paper():
    _, origin, dsx = report_table3(with_accuracy=False)
    red_f = 1 - dsx.mflops / origin.mflops
    red_p = 1 - dsx.total_params / origin.total_params
    # Paper: "up to 38.25% FLOPs and 39.41% params" reduction.
    assert 0.25 < red_f < 0.55
    assert 0.25 < red_p < 0.55


def test_table3_profile_cost(benchmark):
    """Measured: cost of profiling full-size ImageNet ResNet50 (the harness
    itself must stay cheap enough to iterate on)."""
    model = build_model("resnet50", num_classes=1000, imagenet_stem=True)
    benchmark.pedantic(
        lambda: profile_model(model, (3, 224, 224)), rounds=1, iterations=1
    )


if __name__ == "__main__":
    report_table3()
