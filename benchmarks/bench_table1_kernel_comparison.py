"""Table I — PW vs GPW vs SCC: FLOPs / params / accuracy triangle.

The paper's Table I is qualitative (High/Low).  We regenerate it
quantitatively on one representative layer shape (analytic costs) plus a
small trained head-to-head for the accuracy column, and verify the two
claimed degeneracies: PW == SCC's cg=1 corner, GPW == SCC's co=0 corner.
"""
import numpy as np

from common import emit, full_mode, reduced_training_setup, train_and_score
from repro import nn
from repro.core.blocks import make_separable_block
from repro.core.channel_map import channel_windows
from repro.core.design_space import layer_costs
from repro.core.scc_kernels import Dsxplore
from repro.core.channel_map import SCCConfig
from repro.utils import format_table, seed_all


def report_table1():
    cin, cout, spatial = 64, 128, 16
    rows = []
    pw_flops, pw_params = layer_costs(cin, cout, 1, spatial)
    for label, cg in [("PW", 1), ("GPW-cg2", 2), ("SCC-cg2-co50%", 2)]:
        flops, params = layer_costs(cin, cout, cg, spatial)
        rows.append([label, f"{flops / 1e6:.2f}", f"{params}",
                     f"{flops / pw_flops:.2f}x", f"{params / pw_params:.2f}x"])

    # Degeneracy checks (Table I footnotes).
    pw_wins = channel_windows(cin, cout, 1, 0.0)
    assert all(sorted(r.tolist()) == list(range(cin)) for r in pw_wins)
    gpw_wins = channel_windows(cin, cout, 2, 0.0)
    assert set(gpw_wins[0]) == set(range(cin // 2))

    # Accuracy column: small trained comparison at matched cost.
    from common import accuracy_protocol

    seed_all(0)
    epochs = 10 if full_mode() else 6
    train_loader, test_loader = accuracy_protocol(seed=1)
    accs = {}
    for scheme, cg, co in [("pw", 1, 0.0), ("gpw", 4, 0.0), ("scc", 4, 0.5)]:
        seed_all(42)
        model = nn.Sequential(
            nn.Conv2d(8, 16, 3, padding=1, bias=False),
            nn.BatchNorm2d(16), nn.ReLU(),
            make_separable_block(16, 32, stride=2, scheme=scheme, cg=cg, co=co),
            make_separable_block(32, 64, stride=2, scheme=scheme, cg=cg, co=co),
            nn.GlobalAvgPool2d(), nn.Linear(64, 10),
        )
        accs[scheme] = train_and_score(model, train_loader, test_loader, epochs)

    text = format_table(
        ["Kernel", "MFLOPs@16x16", "Params", "FLOPs vs PW", "Params vs PW"],
        rows,
        title=f"Layer shape Cin={cin}, Cout={cout}, {spatial}x{spatial} (paper Table I, quantified)",
    )
    text += "\n\nTrained accuracy (reduced task; paper claims PW~SCC > GPW at equal cost):\n"
    text += format_table(
        ["Scheme", "Best test acc"],
        [[k.upper(), f"{v:.3f}"] for k, v in accs.items()],
    )
    text += (
        "\nExpected shape: GPW cost == SCC cost < PW cost; acc(SCC) >= acc(GPW)."
    )
    return emit("table1_kernel_comparison", text), accs


def test_table1_report():
    _, accs = report_table1()
    # Cost identity is exact; accuracy ordering is the paper's claim but on a
    # reduced task we assert a non-strict version with slack.
    assert accs["scc"] >= accs["gpw"] - 0.08


def test_scc_forward_kernel(benchmark):
    """Measured: fused DSXplore forward on the Table-I layer shape."""
    cfg = SCCConfig(64, 128, 2, 0.5)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((16, 64, 16, 16)).astype(np.float32)
    w = rng.standard_normal((128, 32)).astype(np.float32)
    strat = Dsxplore(cfg)
    benchmark(strat.forward, x, w)


if __name__ == "__main__":
    report_table1()
