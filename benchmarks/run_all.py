"""Regenerate every table and figure of the paper in one run.

Usage::

    python benchmarks/run_all.py            # quick mode (a few minutes)
    REPRO_BENCH_FULL=1 python benchmarks/run_all.py   # long accuracy runs

Reports are printed and saved under ``benchmarks/results/``; the
experiment-by-experiment comparison against the paper is summarised in
EXPERIMENTS.md.
"""
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_table1_kernel_comparison import report_table1
from bench_table2_cifar_accuracy import report_table2
from bench_table3_imagenet_resnet50 import report_table3
from bench_table4_mobilenet_ablation import report_table4
from bench_table5_inference import report_table5
from bench_fig7_training_speedup_cifar import report_fig7
from bench_fig8_training_speedup_imagenet import report_fig8
from bench_fig9_backward import report_fig9
from bench_fig10_memory_cc import report_fig10
from bench_fig11_groups_sweep import report_fig11
from bench_fig12_overlap_sweep import report_fig12
from bench_fig13_batch_size import report_fig13
from bench_fig14_multigpu import report_fig14
from bench_ablation_cyclic_index import report_ablation_cyclic
from bench_ablation_plan_cache import report_ablation_plan_cache
from bench_ablation_vectorization import report_ablation_vectorization
from bench_ablation_shift_scc import report_ablation_shift
from bench_serving_batching import report_serving_batching
from bench_multimodel_serving import report_multimodel_serving
from bench_backend_scaling import report_backend_scaling
from bench_tiled_gemm import report_tiled_gemm
from bench_async_gateway import report_async_gateway
from bench_plan_tuner import report_plan_tuner
from bench_fault_tolerance import report_fault_tolerance
from bench_sharded_router import report_sharded_router

REPORTS = [
    ("Table I", report_table1),
    ("Table II", report_table2),
    ("Table III", report_table3),
    ("Table IV", report_table4),
    ("Table V", report_table5),
    ("Figure 7", report_fig7),
    ("Figure 8", report_fig8),
    ("Figure 9", report_fig9),
    ("Figure 10", report_fig10),
    ("Figure 11", report_fig11),
    ("Figure 12", report_fig12),
    ("Figure 13", report_fig13),
    ("Figure 14", report_fig14),
    ("Ablation: cyclic index", report_ablation_cyclic),
    ("Ablation: plan cache", report_ablation_plan_cache),
    ("Ablation: vectorization", report_ablation_vectorization),
    ("Ablation: shift+scc", report_ablation_shift),
    ("Serving: bucketed batching", report_serving_batching),
    ("Serving: multi-model routing", report_multimodel_serving),
    ("Backend: threaded scaling", report_backend_scaling),
    ("Backend: tiled contractions", report_tiled_gemm),
    ("Serving: async gateway", report_async_gateway),
    ("Backend: plan auto-tuner", report_plan_tuner),
    ("Serving: fault tolerance", report_fault_tolerance),
    ("Serving: sharded router", report_sharded_router),
]


def main() -> None:
    from repro.utils import seed_all

    total_start = time.perf_counter()
    for label, fn in REPORTS:
        seed_all(0)
        start = time.perf_counter()
        fn()
        print(f"[{label} done in {time.perf_counter() - start:.1f}s]")
    print(f"\nAll {len(REPORTS)} experiments regenerated in "
          f"{time.perf_counter() - total_start:.1f}s; reports in benchmarks/results/.")


if __name__ == "__main__":
    main()
