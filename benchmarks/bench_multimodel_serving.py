"""Serving (beyond the paper's figures) — multi-model routing on a shared,
capacity-constrained plan cache.

The ROADMAP's heavy-traffic scenario, scaled to many models per process:
three models of different sizes behind one ``repro.serve.Router``, traffic
skewed 70/20/10 (one hot model, two colder ones), and the process-wide
plan cache resized *below* the three models' combined plan working set so
eviction is live during the whole window — the regime the single-model
serving benchmark never enters.

Reported:

- per-model p50/p95 latency, throughput and exact (owner-attributed)
  plan-cache hit rate, plus the aggregate hit rate the acceptance gate
  cares about (>= 0.90 with the cache at ~60% of the working set);
- an eviction-policy ablation: the same stream with the cache's
  traffic-weighted victim selection reduced to pure LRU
  (``eviction_candidates=1``), isolating how much the weighting protects
  the hot model from the cold models' churn;
- a cross-model batch-overlap section: the PR-3 router drained every
  model's batches sequentially on one thread; the shared-pool router
  overlaps the three per-model execution chains.  Per-batch execution
  times are measured on a serial drain and the overlapped completion time
  is modelled as the LPT makespan of those chains (each chain is
  unsplittable: a server serialises its own batches on its ``_exec_lock``)
  — the same measure-serially/model-the-schedule protocol as
  ``bench_backend_scaling``, next to the real pooled wall time.

The cache/hit-rate sections run on an ``overlap=False`` router: they are
synchronous and seeded, so every count (hits, misses, evictions, hit
rates) stays deterministic and machine-independent — safe for the
perf-trajectory comparator to gate on.  Overlap would interleave the
models' cache-access order and trade that determinism away.
"""
import time

import numpy as np

from common import emit, full_mode
from repro.backend import (
    PLAN_CACHE,
    clear_plan_cache,
    num_workers,
    plan_cache_stats,
)
from repro.backend.parallel import makespan
from repro.serve import Router, ServerConfig
from repro.utils import format_table, seed_all

INPUT = (3, 16, 16)
# (router name, registry name, build kwargs): three sizes, one architecture
# family difference, so working sets overlap only trivially.
MODELS = (
    ("mnet-hot", "mobilenet", dict(scheme="scc", width_mult=0.25, seed=81)),
    ("mnet-warm", "mobilenet", dict(scheme="pw", width_mult=0.5, seed=82)),
    ("res-cold", "resnet18", dict(scheme="scc", width_mult=0.25, seed=83)),
)
TRAFFIC = {"mnet-hot": 0.70, "mnet-warm": 0.20, "res-cold": 0.10}
CAPACITY_FRACTION = 0.6    # gate point: cache capacity / runtime working set
CONTENDED_FRACTION = 0.4   # ablation point: hot model's plans reach the LRU tail


OVERLAP_WORKERS = 4        # lanes the overlap model schedules onto
OVERLAP_GATE = 1.5         # required modelled speedup vs serial drain


def _build_router(overlap: bool = False) -> Router:
    # The cache-gate sections need overlap=False: a deterministic,
    # registration-ordered drain keeps every cache counter reproducible.
    seed_all(29)
    router = Router(server_config=ServerConfig(bucket_sizes=(1, 2, 4, 8),
                                               max_latency=60.0),
                    overlap=overlap)
    for name, registry_name, kwargs in MODELS:
        router.register(name, registry_name, input_shapes=[INPUT], **kwargs)
    return router


def _stream(num_requests: int, seed: int = 7):
    """Skewed arrival sequence: (model name, image) pairs."""
    rng = np.random.default_rng(seed)
    names = list(TRAFFIC)
    weights = np.array([TRAFFIC[n] for n in names])
    picks = rng.choice(len(names), size=num_requests, p=weights / weights.sum())
    return [
        (names[k], rng.standard_normal(INPUT).astype(np.float32)) for k in picks
    ]


def _serve(router: Router, stream) -> dict:
    router.reset_metrics()
    handles = [router.submit(name, image) for name, image in stream]
    router.flush()
    lost = sum(router.result(h) is None for h in handles)
    metrics = router.metrics()
    return {"metrics": metrics, "lost": lost}


def _measure(router: Router, stream, fraction: float, old_maxsize: int) -> dict:
    """One policy run: re-warm from a cold cache, constrain capacity, serve.

    The *runtime* working set is measured by clearing the cache after
    registration and replaying a warm stream — the registration-time build
    set is much larger (it includes plans only construction touches), so
    sizing against it would never constrain the serving path.
    """
    clear_plan_cache()
    warm = _serve(router, _stream(48, seed=3))
    assert warm["lost"] == 0
    working_set = plan_cache_stats()["size"]
    maxsize = max(1, int(working_set * fraction))
    PLAN_CACHE.resize(maxsize)
    outcome = _serve(router, stream)
    PLAN_CACHE.resize(old_maxsize)
    return {
        "working_set": working_set,
        "maxsize": maxsize,
        "metrics": outcome["metrics"],
        "lost": outcome["lost"],
    }


def _measure_overlap(router: Router) -> dict:
    """Serial vs shared-pool drain of three concurrent models' batches.

    Arrivals come in rounds of ``per_round`` per model (below the largest
    bucket, so nothing executes inline at submit time); each ``flush`` then
    drains one batch per model.  The serial drain measures every batch's
    execution time; the overlapped completion is modelled per round as the
    makespan of the three chain segments on ``OVERLAP_WORKERS`` lanes and
    also measured against the real pool (``env.host_cpus`` says whether the
    wall number can move on this host).
    """
    per_round = 4
    rounds = 16 if full_mode() else 10
    rng = np.random.default_rng(23)
    names = list(router.models())
    images = [
        [rng.standard_normal(INPUT).astype(np.float32) for _ in range(per_round)]
        for _ in range(rounds)
    ]
    previous_overlap = router.overlap

    def drive(overlap: bool) -> float:
        router.overlap = overlap
        wall = 0.0
        for r in range(rounds):
            for name in names:
                for image in images[r]:
                    router.submit(name, image)
            start = time.perf_counter()
            router.flush()
            wall += time.perf_counter() - start
        return wall

    try:
        drive(overlap=False)  # warm every (shape, bucket) plan + buffers
        for name in names:
            router.server(name).reset_metrics()
        serial_wall = drive(overlap=False)
        chains = {name: router.server(name).exec_seconds() for name in names}
        assert all(len(c) == rounds for c in chains.values()), chains
        serial_exec = sum(sum(c) for c in chains.values())
        modeled = sum(
            makespan([chains[name][r] for name in names], OVERLAP_WORKERS)
            for r in range(rounds)
        )
        with num_workers(OVERLAP_WORKERS):
            overlap_wall = drive(overlap=True)
    finally:
        router.overlap = previous_overlap
    return {
        "rounds": rounds,
        "requests_per_model": per_round * rounds,
        "workers_modeled": OVERLAP_WORKERS,
        "serial_wall_ms": round(serial_wall * 1e3, 3),
        "serial_exec_ms": round(serial_exec * 1e3, 3),
        "modeled_overlap_ms": round(modeled * 1e3, 3),
        "overlap_wall_ms": round(overlap_wall * 1e3, 3),
        "chain_ms": {
            name: round(sum(c) * 1e3, 3) for name, c in chains.items()
        },
        "overlap_speedup_modeled": round(serial_exec / modeled, 3),
        "overlap_speedup_measured": round(serial_wall / overlap_wall, 3),
    }


def report_multimodel_serving():
    num_requests = 600 if full_mode() else 240
    old_maxsize = PLAN_CACHE.maxsize
    old_candidates = PLAN_CACHE.eviction_candidates
    try:
        clear_plan_cache()
        router = _build_router()
        stream = _stream(num_requests)

        gate = _measure(router, stream, CAPACITY_FRACTION, old_maxsize)
        metrics = gate["metrics"]
        working_set, maxsize = gate["working_set"], gate["maxsize"]

        # Eviction-policy ablation at tighter capacity, where the hot
        # model's plans do drift to the LRU tail between its batches: the
        # same stream under traffic-weighted vs pure-LRU victim selection.
        contended = _measure(router, stream, CONTENDED_FRACTION, old_maxsize)
        PLAN_CACHE.eviction_candidates = 1
        contended_lru = _measure(router, stream, CONTENDED_FRACTION, old_maxsize)
        PLAN_CACHE.eviction_candidates = old_candidates

        # Cross-model batch overlap (after the count-gated sections: its
        # extra traffic must not perturb their deterministic counters).
        overlap = _measure_overlap(router)
        assert overlap["overlap_speedup_modeled"] >= OVERLAP_GATE, overlap

        counts = {name: sum(1 for n, _ in stream if n == name) for name in TRAFFIC}
        rows = []
        for name in router.models():
            served = metrics.per_model[name]
            cache = metrics.per_model_cache[name]
            rows.append({
                "model": name,
                "share": round(counts[name] / num_requests, 3),
                "completed": served.completed,
                "throughput_rps": round(served.throughput, 1),
                "p50_ms": round(served.latency_p50 * 1e3, 3),
                "p95_ms": round(served.latency_p95 * 1e3, 3),
                "hit_rate": round(cache["hit_rate"], 4),
                "evictions": cache["evictions"],
            })
        ablation_rows = []
        for policy, run in (("weighted", contended), ("pure-lru", contended_lru)):
            m = run["metrics"]
            ablation_rows.append({
                "policy": policy,
                "capacity": run["maxsize"],
                "aggregate_hit_rate": round(m.aggregate_hit_rate, 4),
                "hot_hit_rate": round(m.per_model_cache["mnet-hot"]["hit_rate"], 4),
                "evictions": m.cache_evictions,
            })

        table = format_table(
            ["Model", "traffic", "served", "req/s", "p50 (ms)", "p95 (ms)",
             "hit rate", "evictions"],
            [[r["model"], f"{r['share']:.0%}", str(r["completed"]),
              f"{r['throughput_rps']:.1f}", f"{r['p50_ms']:.2f}",
              f"{r['p95_ms']:.2f}", f"{r['hit_rate']:.3f}",
              str(r["evictions"])] for r in rows],
            title="Multi-model serving — 3 models, 70/20/10 traffic, shared "
                  f"plan cache at {CAPACITY_FRACTION:.0%} of the runtime "
                  f"working set ({num_requests} requests)",
        )
        table += (
            f"\nRuntime working set {working_set} plans, cache capacity "
            f"{maxsize}: aggregate hit rate {metrics.aggregate_hit_rate:.3f}, "
            f"{metrics.cache_evictions} evictions, 0 lost requests.\n\n"
        )
        table += format_table(
            ["Eviction policy", "capacity", "aggregate hit rate",
             "hot-model hit rate", "evictions"],
            [[r["policy"], str(r["capacity"]), f"{r['aggregate_hit_rate']:.3f}",
              f"{r['hot_hit_rate']:.3f}", str(r["evictions"])]
             for r in ablation_rows],
            title=f"Eviction ablation at {CONTENDED_FRACTION:.0%} capacity "
                  "(hot plans reach the LRU tail)",
        )
        table += (
            "\nTraffic-weighted victim selection shields the hot model once"
            "\ncapacity is tight enough that its plans age to the LRU tail"
            "\nbetween batches; at the gate capacity both policies coast"
            "\nbecause re-touches keep hot plans off the tail entirely.\n\n"
        )
        table += format_table(
            ["Drain", "wall (ms)", "exec (ms)", "speedup"],
            [["serial (PR-3 single thread)",
              f"{overlap['serial_wall_ms']:.1f}",
              f"{overlap['serial_exec_ms']:.1f}", "1.00"],
             [f"shared pool, modeled @{overlap['workers_modeled']}w",
              "-", f"{overlap['modeled_overlap_ms']:.1f}",
              f"{overlap['overlap_speedup_modeled']:.2f}"],
             ["shared pool, measured wall",
              f"{overlap['overlap_wall_ms']:.1f}", "-",
              f"{overlap['overlap_speedup_measured']:.2f}"]],
            title="Cross-model batch overlap — 3 models' chains, "
                  f"{overlap['requests_per_model']} requests/model in "
                  f"{overlap['rounds']} rounds",
        )
        table += (
            "\nModeled = LPT makespan of the measured per-batch chains on"
            f"\n{overlap['workers_modeled']} lanes (a server's own batches stay"
            "\nserialised); measured wall only moves with enough unloaded"
            "\nhost cores (see env.host_cpus in the JSON)."
        )
        data = {
            "num_requests": num_requests,
            "working_set": working_set,
            "cache_maxsize": maxsize,
            "capacity_fraction": CAPACITY_FRACTION,
            "aggregate_hit_rate": round(metrics.aggregate_hit_rate, 4),
            "evictions": metrics.cache_evictions,
            "lost_requests": gate["lost"] + contended["lost"] + contended_lru["lost"],
            "rows": rows,
            "eviction_ablation": ablation_rows,
            "overlap": overlap,
            "cache": plan_cache_stats(),
        }
        return emit("multimodel_serving", table, data=data), data
    finally:
        PLAN_CACHE.eviction_candidates = old_candidates
        PLAN_CACHE.resize(old_maxsize)
        clear_plan_cache()


def test_multimodel_aggregate_hit_rate_gate():
    _, data = report_multimodel_serving()
    # The acceptance gate: skewed 3-model traffic on a cache sized below
    # the runtime working set still serves >= 90% from the plan cache,
    # and no request is lost.
    assert data["cache_maxsize"] < data["working_set"]
    assert data["aggregate_hit_rate"] >= 0.90, data
    assert data["lost_requests"] == 0
    # The hot model is protected: its hit rate stays above the aggregate.
    hot = next(r for r in data["rows"] if r["model"] == "mnet-hot")
    assert hot["hit_rate"] >= data["aggregate_hit_rate"], data["rows"]
    # Under contention the weighted policy keeps the hot model warmer than
    # pure LRU serving the identical stream.
    weighted, pure_lru = data["eviction_ablation"]
    assert weighted["hot_hit_rate"] > pure_lru["hot_hit_rate"], data
    # Cross-model overlap: the shared-pool drain beats the PR-3 serial
    # drain by >= 1.5x (modelled on the measured per-batch chains).
    assert data["overlap"]["overlap_speedup_modeled"] >= OVERLAP_GATE, data


if __name__ == "__main__":
    report_multimodel_serving()
