"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md section 4).  Each module has two faces:

- a ``report_*`` function that computes and prints the paper's rows/series
  (runnable standalone via ``python benchmarks/run_all.py``),
- ``test_*`` entries using the pytest-benchmark fixture that time the
  measured-kernel component under ``pytest benchmarks/ --benchmark-only``.

Reports are also written to ``benchmarks/results/`` so a full run leaves an
auditable record.

Set ``REPRO_BENCH_FULL=1`` for the longer, better-converged accuracy runs
(the defaults keep a full ``--benchmark-only`` sweep to a few minutes on a
laptop CPU).
"""
import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def device():
    from repro.gpusim import tesla_v100

    return tesla_v100()


@pytest.fixture(autouse=True)
def _seed_each_test():
    from repro.utils import seed_all

    seed_all(0)


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


def full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"
