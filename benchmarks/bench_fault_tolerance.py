"""Serving fault tolerance (beyond the paper's figures) — chaos goodput,
failure isolation, circuit breaking and backend degradation, measured on
deterministic virtual-clock runs of the real serving stack.

Every run drives the actual :class:`~repro.serve.Router` /
:class:`~repro.serve.ModelExecutor` with the deterministic fault plane
(:mod:`repro.faults`) installed: fire decisions are pure CRC-32 hashes of
``(seed, site, key, attempt)`` and every backoff sleep goes through an
injected virtual clock, so the same seed yields the identical fault
schedule on any machine — all sections are safe for the perf-trajectory
comparator to gate on (ratio-named metrics, no wall-clock noise).

Reported:

- **chaos goodput sweep** — one 100-request trace replayed at 0/2/5/10%
  transient kernel-fault rates plus two poisoned requests: non-poisoned
  goodput stays >= 99% at the 5% chaos point (asserted, the PR's acceptance
  gate) and every survivor is bitwise-identical to the fault-free run;
- **isolation ablation** — the same poisoned trace with bisect isolation on
  vs off: isolation saves every innocent co-batched request, no-isolation
  fails whole batches (the ``cobatched_survival_ratio`` is the win);
- **breaker ablation** — a model whose batches always fail, with and
  without a circuit breaker: the breaker cuts wasted kernel executions by
  ~an order of magnitude by shedding at the door while open;
- **degradation recovery** — a backend-scoped fault (the "broken
  accelerator" model): after ``degrade_after`` consecutive kernel faults
  the workload demotes one step down the chain, the faults stop, and the
  demoted outputs stay bitwise-identical (numpy <-> threaded).
"""
import numpy as np

from common import emit, full_mode
from repro.backend import REGISTRY
from repro.faults import FaultInjector, FaultSpec, use_faults
from repro.serve import (
    ModelExecutor,
    ModelUnavailable,
    RequestFailed,
    RequestStatus,
    RetryPolicy,
    Router,
    ServerConfig,
)
from repro.utils import format_table, seed_all

INPUT = (3, 16, 16)
GOODPUT_GATE = 0.99       # non-poisoned goodput floor at the 5% chaos point
GATE_RATE = 0.05


def _model():
    from repro.models import build_model

    return build_model("mobilenet", scheme="scc", width_mult=0.25,
                       rng=np.random.default_rng(2))


def _images(n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(INPUT).astype(np.float32) for _ in range(n)]


def _virtual_router(**server_knobs):
    t = [0.0]
    router = Router(
        server_config=ServerConfig(bucket_sizes=(4,), max_latency=0.05,
                                   **server_knobs),
        clock=lambda: t[0],
        overlap=False,
        sleep=lambda dt: t.__setitem__(0, t[0] + dt),
    )
    return router, t


# ---------------------------------------------------------------------------
# Section 1 — chaos goodput sweep: transient faults + poison, bitwise gate
# ---------------------------------------------------------------------------

def measure_chaos_goodput():
    n = 200 if full_mode() else 100
    images = _images(n, seed=12)
    poison = [("m", 17), ("m", n - 3)]
    poisoned_ids = {rid for _, rid in poison}

    def run(injector):
        router, t = _virtual_router(
            retry=RetryPolicy(max_attempts=3, base_delay=0.001, seed=11),
        )
        router.register("m", _model(), input_shapes=[INPUT])
        handles = []
        ctx = use_faults(injector)
        with ctx:
            for image in images:
                t[0] += 0.001
                handles.append(router.submit("m", image))
                router.poll()
            t[0] += 1.0
            router.flush()
        return router, handles

    router, handles = run(None)
    reference = [router.result(h).output for h in handles]

    rows = []
    for rate in (0.0, 0.02, GATE_RATE, 0.10):
        inj = FaultInjector(
            [FaultSpec(site="kernel", rate=rate, models=("m",))],
            seed=20, poison_ids=poison,
        )
        router, handles = run(inj)
        metrics = router.metrics().per_model["m"]
        server = router.server("m")
        good = mismatches = failed_innocent = 0
        for handle, ref in zip(handles, reference):
            status = router.status(handle)
            if status == RequestStatus.FAILED:
                # Never silent: the typed failure is always retrievable.
                assert isinstance(server.failure(handle.request_id),
                                  RequestFailed)
                if handle.request_id not in poisoned_ids:
                    failed_innocent += 1
                continue
            assert status == RequestStatus.DONE, (rate, status)
            if handle.request_id in poisoned_ids:
                continue
            if np.array_equal(router.result(handle).output, ref):
                good += 1
            else:
                mismatches += 1
        goodput = good / (len(images) - len(poisoned_ids))
        rows.append({
            "fault_rate": rate,
            "requests": len(images),
            "goodput": round(goodput, 4),
            "failed_innocent": failed_innocent,
            "poisoned_failed": sum(
                1 for h in handles
                if h.request_id in poisoned_ids
                and router.status(h) == RequestStatus.FAILED
            ),
            "bitwise_mismatches": mismatches,
            "retries": metrics.retries,
            "isolated_batches": metrics.isolated_batches,
        })
    for row in rows:
        # Survivors are bitwise-identical to the fault-free run at every
        # chaos level: faults perturb when work runs, never what it computes.
        assert row["bitwise_mismatches"] == 0, rows
        assert row["poisoned_failed"] == len(poisoned_ids), rows
    gate_row = next(r for r in rows if r["fault_rate"] == GATE_RATE)
    assert gate_row["goodput"] >= GOODPUT_GATE, rows
    return rows, {
        "chaos_goodput_at_5pct_faults": gate_row["goodput"],
        "chaos_rows": rows,
    }


# ---------------------------------------------------------------------------
# Section 2 — isolation ablation: bisect-retry vs whole-batch failure
# ---------------------------------------------------------------------------

def measure_isolation():
    n = 32
    images = _images(n, seed=21)
    poison_ids = {5, 17, 26}          # three different bucket-4 batches
    innocents = n - len(poison_ids)

    def run(isolate):
        router, t = _virtual_router(isolate_failures=isolate)
        router.register("m", _model(), input_shapes=[INPUT])
        inj = FaultInjector(poison_ids=[("m", rid) for rid in poison_ids])
        with use_faults(inj):
            handles = [router.submit("m", image) for image in images]
            t[0] += 1.0
            router.flush()
        survived = sum(
            1 for h in handles
            if h.request_id not in poison_ids
            and router.status(h) == RequestStatus.DONE
        )
        return {
            "isolation": "on" if isolate else "off",
            "innocents_cobatched": len(poison_ids) * 3,
            "innocents_survived": survived,
            "innocents_total": innocents,
            "survival": round(survived / innocents, 4),
        }

    on, off = run(True), run(False)
    # Isolation saves every innocent; whole-batch failure takes down the
    # three co-batched neighbours of each poisoned request.
    assert on["innocents_survived"] == innocents, (on, off)
    assert off["innocents_survived"] == innocents - off["innocents_cobatched"]
    ratio = on["survival"] / off["survival"]
    return [on, off], {
        "isolation_cobatched_survival_ratio": round(ratio, 3),
        "isolation_runs": [on, off],
    }


# ---------------------------------------------------------------------------
# Section 3 — breaker ablation: wasted executions against a dead model
# ---------------------------------------------------------------------------

def measure_breaker():
    n = 40

    def run(with_breaker):
        knobs = dict(breaker_window=16, breaker_min_samples=4,
                     breaker_threshold=0.5, breaker_cooldown=10.0) \
            if with_breaker else {}
        router, t = _virtual_router(**knobs)
        router.register("dead", _model(), input_shapes=[INPUT])
        inj = FaultInjector([FaultSpec(site="kernel", rate=1.0,
                                       models=("dead",))])
        shed = 0
        with use_faults(inj):
            for image in _images(n, seed=31):
                t[0] += 0.001
                try:
                    router.submit("dead", image)
                except ModelUnavailable:
                    shed += 1
                router.poll()
            t[0] += 1.0
            router.flush()
        metrics = router.metrics().per_model["dead"]
        return {
            "breaker": "on" if with_breaker else "off",
            "submits": n,
            "executed_and_failed": metrics.failed,
            "shed_at_door": shed,
            "wasted_kernel_fires": inj.stats()["site_fires"]["kernel"],
            "breaker_opens": metrics.breaker_opens,
        }

    on, off = run(True), run(False)
    # Every submit against the dead model without a breaker burns a full
    # bisect-retry episode; the breaker pays for one batch, opens, and
    # sheds the rest at the door (ModelUnavailable — typed, never silent).
    assert on["breaker_opens"] >= 1 and off["breaker_opens"] == 0
    assert on["shed_at_door"] > 0 and off["shed_at_door"] == 0
    assert on["executed_and_failed"] + on["shed_at_door"] == n
    ratio = off["wasted_kernel_fires"] / max(on["wasted_kernel_fires"], 1)
    assert ratio > 2.0, (on, off)
    return [on, off], {
        "breaker_wasted_exec_ratio": round(ratio, 3),
        "breaker_runs": [on, off],
    }


# ---------------------------------------------------------------------------
# Section 4 — degradation: demote off a broken backend, recover bitwise
# ---------------------------------------------------------------------------

def measure_degradation():
    resolved = REGISTRY.resolve_name("conv2d", "default")
    # One step down to a backend that computes bit-identically (threaded is
    # numpy sharded on the pool); under REPRO_BACKEND=threaded the chain
    # naturally inverts.
    alt = "threaded" if resolved != "threaded" else "numpy"
    bitwise_pair = {resolved, alt} <= {"numpy", "threaded"}
    images = _images(4, seed=41)

    clean = ModelExecutor(_model(), input_shapes=[INPUT], bucket_sizes=(4,))
    clean_rows, _, _, _ = clean.run_resilient(images, 4)

    executor = ModelExecutor(_model(), input_shapes=[INPUT], bucket_sizes=(4,),
                             degrade_after=2, degrade_chain=(resolved, alt))
    inj = FaultInjector([FaultSpec(site="kernel", rate=1.0,
                                   backends=(resolved,))])
    t = [0.0]
    rows = []
    with use_faults(inj):
        for attempt in range(4):
            _, errors, _, _ = executor.run_resilient(
                images, 4, clock=lambda: t[0], isolate=False,
                sleep=lambda dt: t.__setitem__(0, t[0] + dt),
            )
            events = executor.degraded()
            rows.append({
                "batch": attempt,
                "backend": events[-1]["backend"] if events else resolved,
                "failed": len(errors),
                "demotions": len(events),
            })
    # Two consecutive kernel faults on the resolved backend, then demotion
    # makes the (backend-scoped) faults stop — observable recovery.
    assert [r["failed"] for r in rows] == [4, 4, 0, 0], rows
    assert rows[-1]["demotions"] == 1 and rows[-1]["backend"] == alt, rows
    bitwise = None
    if bitwise_pair:
        recovered, errors, _, _ = executor.run_resilient(images, 4)
        assert not errors
        for row, clean_row in zip(recovered, clean_rows):
            np.testing.assert_array_equal(row, clean_row)
        bitwise = True
    return rows, {
        "degraded_from": resolved,
        "degraded_to": alt,
        "batches_to_recover": 2,
        "degraded_bitwise_equal": bitwise,
    }


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------

def report_fault_tolerance():
    seed_all(7)
    chaos_rows, chaos_data = measure_chaos_goodput()
    iso_rows, iso_data = measure_isolation()
    brk_rows, brk_data = measure_breaker()
    deg_rows, deg_data = measure_degradation()

    table = format_table(
        ["Fault rate", "requests", "goodput", "innocent fails",
         "poison fails", "bitwise mism.", "retries", "isolations"],
        [[f"{r['fault_rate']:.0%}", str(r["requests"]), f"{r['goodput']:.4f}",
          str(r["failed_innocent"]), str(r["poisoned_failed"]),
          str(r["bitwise_mismatches"]), str(r["retries"]),
          str(r["isolated_batches"])] for r in chaos_rows],
        title="Chaos goodput sweep — one seeded trace, transient kernel "
              "faults + 2 poisoned requests, virtual clock",
    )
    table += (
        "\nNon-poisoned goodput at the 5% chaos point: "
        f"{chaos_data['chaos_goodput_at_5pct_faults']:.4f} (gate "
        f">= {GOODPUT_GATE}); every survivor bitwise-identical to the "
        "fault-free run, every failure typed (RequestFailed).\n\n"
    )
    table += format_table(
        ["Isolation", "co-batched innocents", "survived", "of", "survival"],
        [[r["isolation"], str(r["innocents_cobatched"]),
          str(r["innocents_survived"]), str(r["innocents_total"]),
          f"{r['survival']:.3f}"] for r in iso_rows],
        title="Isolation ablation — 3 poisoned requests across 8 bucket-4 "
              "batches, bisect-retry on vs off",
    )
    table += (
        "\nBisect isolation re-pads every sub-batch to the same bucket, so "
        "saving\nthe co-batched innocents costs no numerics: survival "
        f"{iso_data['isolation_cobatched_survival_ratio']:.2f}x the "
        "whole-batch-failure baseline.\n\n"
    )
    table += format_table(
        ["Breaker", "submits", "executed+failed", "shed at door",
         "wasted kernel fires", "opens"],
        [[r["breaker"], str(r["submits"]), str(r["executed_and_failed"]),
          str(r["shed_at_door"]), str(r["wasted_kernel_fires"]),
          str(r["breaker_opens"])] for r in brk_rows],
        title="Breaker ablation — 40 submits against an always-failing "
              "model, circuit breaker on vs off",
    )
    table += (
        "\nThe breaker pays for one failing batch, opens, and sheds the "
        "rest fast\n(ModelUnavailable): "
        f"{brk_data['breaker_wasted_exec_ratio']:.1f}x fewer wasted kernel "
        "executions than retrying a dead model forever.\n\n"
    )
    table += format_table(
        ["Batch", "backend", "failed", "demotions"],
        [[str(r["batch"]), r["backend"], str(r["failed"]),
          str(r["demotions"])] for r in deg_rows],
        title=f"Degradation recovery — kernel faults scoped to the "
              f"{deg_data['degraded_from']!r} backend, degrade_after=2",
    )
    table += (
        f"\nAfter 2 consecutive kernel faults the workload demotes "
        f"{deg_data['degraded_from']} -> {deg_data['degraded_to']} and the "
        "backend-scoped faults stop"
        + (", with bit-identical outputs on the demoted path."
           if deg_data["degraded_bitwise_equal"] else ".")
    )
    data = {
        "chaos": chaos_data["chaos_rows"],
        "isolation": iso_data["isolation_runs"],
        "breaker": brk_data["breaker_runs"],
        "degradation": deg_rows,
        "chaos_goodput_at_5pct_faults":
            chaos_data["chaos_goodput_at_5pct_faults"],
        "isolation_cobatched_survival_ratio":
            iso_data["isolation_cobatched_survival_ratio"],
        "breaker_wasted_exec_ratio": brk_data["breaker_wasted_exec_ratio"],
        "degradation_summary": deg_data,
    }
    return emit("fault_tolerance", table, data=data), data


def test_fault_tolerance_gates():
    _, data = report_fault_tolerance()
    # The PR's acceptance gate: >= 99% non-poisoned goodput under 5% chaos.
    assert data["chaos_goodput_at_5pct_faults"] >= GOODPUT_GATE, data
    # Isolation saves co-batched innocents; the breaker stops wasted work.
    assert data["isolation_cobatched_survival_ratio"] > 1.2, data
    assert data["breaker_wasted_exec_ratio"] > 2.0, data


if __name__ == "__main__":
    report_fault_tolerance()
