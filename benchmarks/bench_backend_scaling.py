"""Backend scaling (beyond the paper's figures) — the ``threaded`` backend's
worker sweep on the conv + SCC workloads it shards.

Protocol, per workload (a grouped/depthwise conv2d or an SCC strategy,
forward + full backward on warm plans):

1. **Bitwise gate** — the ``threaded`` outputs and both gradients must be
   bit-identical to the ``numpy`` backend (asserted, not ``allclose``): the
   backend only shards along axes that preserve every reduction order.
2. **Measured baseline** — ``numpy`` wall time (warmup + repeats, median).
3. **Modelled sweep** — the run is traced with
   :func:`repro.backend.parallel.trace_parallel`, which executes every
   parallel region serially while recording per-task wall times; the time
   at ``w`` workers is then ``serial_wall - Σ region_serial +
   Σ LPT-makespan(region tasks, w)``.  This is the gpusim move applied to
   the host pool: measure clean per-shard costs, model the parallel
   schedule — it is what the sweep *means* on a core-starved host (CI
   containers included), where concurrently-scheduled shards would just
   time-slice one core.  The reported modelled speedup is
   ``serial_wall / modelled_wall`` *within one trace*, so measurement
   noise between separate timing runs cancels out of the ratio (the
   bitwise gate guarantees the traced serial run does exactly the numpy
   baseline's work, reported alongside).
4. **Measured sweep** — the real pooled wall time at each worker count,
   reported next to the model (on an unloaded ``>= w``-core host the two
   agree; on this container it stays ~1x and says so via ``env.host_cpus``).

The gpusim column is ``DeviceSpec.parallel_speedup(w)`` — the Amdahl +
coordination curve whose constants are calibrated against the modelled
sweep — so simulated and measured speedups stay comparable.
"""
import numpy as np

from common import emit, full_mode
from repro.backend import (
    KernelStats,
    clear_plan_cache,
    conv2d_plan,
    get_kernel,
    get_num_workers,
    scc_plan,
    set_num_workers,
    tile_override,
    tile_slices,
)
from repro.backend.parallel import makespan, trace_parallel
from repro.core.channel_map import SCCConfig
from repro.gpusim import tesla_v100
from repro.utils import format_table, seed_all, time_callable

WORKER_SWEEP = (1, 2, 4, 8)
GATE_WORKERS = 4
GATE_SPEEDUP = 1.8
# Workloads the speedup gate applies to.  The dense conv forward and the
# dsxplore pull-GEMM ride the tiled canonical-order path (PR: tiled
# bitwise-stable contractions); the grouped conv and SCC forward shard
# across their natural group/cycle axes as before.
GATE_WORKLOADS = (
    "conv-gpw-large", "scc-dsxplore-large", "conv-dense-large", "pull-gemm-large",
)
# The tile x worker bitwise grid: every tile size (0 = untiled full-K) must
# give the same bits at every worker count as single-threaded numpy running
# the identical schedule — the canonical-reduction-order claim, asserted.
TILE_SWEEP = (8, 32, 128, 0)
TILE_WORKERS = (1, 2, 4)


class ConvWorkload:
    """Grouped/depthwise conv2d forward + backward on warm plans."""

    tiles = None  # shards over groups, not schedule tiles

    def __init__(self, name, n, cin, hw, cout, kernel, stride, padding, groups):
        self.name = name
        rng = np.random.default_rng(17)
        self.x = rng.standard_normal((n, cin, hw, hw)).astype(np.float32)
        self.w = rng.standard_normal(
            (cout, cin // groups, kernel, kernel)
        ).astype(np.float32)
        self.plan = conv2d_plan(
            self.x.shape, self.w.shape, stride, padding, groups, self.x.dtype
        )
        rng2 = np.random.default_rng(18)
        self.grad = rng2.standard_normal(self.plan.out_shape).astype(np.float32)

    def run(self, backend: str):
        out, ctx = get_kernel("conv2d", backend)(self.plan, self.x, self.w)
        grad_x, grad_w = get_kernel("conv2d_backward", backend)(
            self.plan, ctx, self.grad
        )
        return out, grad_x, grad_w


class DenseConvWorkload:
    """Dense (``groups == 1``) conv2d forward — the lone-GEMM workload the
    schedule-table tiling exists to crack.  ``run`` times the forward only
    (what the gate names); ``run_full`` adds the backward for the bitwise
    grid so the tiled grad-weight path is covered too."""

    def __init__(self, name, n, cin, hw, cout, kernel, stride, padding):
        self.name = name
        rng = np.random.default_rng(23)
        self.x = rng.standard_normal((n, cin, hw, hw)).astype(np.float32)
        self.w = rng.standard_normal((cout, cin, kernel, kernel)).astype(np.float32)
        self.plan = conv2d_plan(
            self.x.shape, self.w.shape, stride, padding, 1, self.x.dtype
        )
        self.grad = np.random.default_rng(24).standard_normal(
            self.plan.out_shape
        ).astype(np.float32)
        self.tiles = len(tile_slices(cin, self.plan.k_tile))

    def run(self, backend: str):
        out, _ = get_kernel("conv2d", backend)(self.plan, self.x, self.w)
        return (out,)

    def run_full(self, backend: str):
        out, ctx = get_kernel("conv2d", backend)(self.plan, self.x, self.w)
        grad_x, grad_w = get_kernel("conv2d_backward", backend)(
            self.plan, ctx, self.grad
        )
        return out, grad_x, grad_w


class PullWorkload:
    """The isolated dsxplore input-centric pull-GEMM (``grad_x = grad_out .
    W_full``), the second lone contraction the tiling parallelises."""

    def __init__(self, name, n, hw, cfg: SCCConfig):
        self.name = name
        self.plan = scc_plan(cfg)
        rng = np.random.default_rng(25)
        self.x = rng.standard_normal(
            (n, cfg.in_channels, hw, hw)
        ).astype(np.float32)
        self.w = rng.standard_normal(
            (cfg.out_channels, cfg.group_width)
        ).astype(np.float32)
        self.grad = np.random.default_rng(26).standard_normal(
            (n, cfg.out_channels, hw, hw)
        ).astype(np.float32)
        self.tiles = len(tile_slices(cfg.out_channels, self.plan.pull_tile))

    def run(self, backend: str):
        grad_x, _ = get_kernel("scc_backward", backend)(
            self.plan, {"x": self.x, "w": self.w}, self.grad,
            strategy="dsxplore", backward_design="input_centric",
            need_weight_grad=False, stats=KernelStats(),
        )
        return (grad_x,)


class SCCWorkload:
    """One SCC strategy forward + backward on warm plans."""

    tiles = None  # shards over cycle positions, not schedule tiles

    def __init__(self, name, strategy, n, hw, cfg: SCCConfig):
        self.name = name
        self.strategy = strategy
        self.plan = scc_plan(cfg)
        rng = np.random.default_rng(19)
        self.x = rng.standard_normal(
            (n, cfg.in_channels, hw, hw)
        ).astype(np.float32)
        self.w = rng.standard_normal(
            (cfg.out_channels, cfg.group_width)
        ).astype(np.float32)
        self.grad = np.random.default_rng(20).standard_normal(
            (n, cfg.out_channels, hw, hw)
        ).astype(np.float32)

    def run(self, backend: str):
        stats = KernelStats()
        out, saved = get_kernel("scc_forward", backend)(
            self.plan, self.x, self.w, strategy=self.strategy, stats=stats
        )
        grad_x, grad_w = get_kernel("scc_backward", backend)(
            self.plan, saved, self.grad, strategy=self.strategy, stats=stats
        )
        return out, grad_x, grad_w


def _workloads():
    n = 8 if full_mode() else 6
    hw = 32 if full_mode() else 24
    return [
        ConvWorkload("conv-gpw-large", n, 64, hw, 128,
                     kernel=3, stride=1, padding=1, groups=8),
        ConvWorkload("conv-dw-large", n, 96, hw, 96,
                     kernel=3, stride=2, padding=1, groups=96),
        DenseConvWorkload("conv-dense-large", n, 64, hw, 128,
                          kernel=3, stride=1, padding=1),
        SCCWorkload("scc-dsxplore-large", "dsxplore", n, hw,
                    SCCConfig(64, 128, 4, 0.25)),
        SCCWorkload("scc-convstack-large", "conv_stack", n, hw,
                    SCCConfig(64, 128, 4, 0.25)),
        PullWorkload("pull-gemm-large", n, hw, SCCConfig(64, 128, 4, 0.25)),
    ]


def _assert_bitwise(workload) -> None:
    """The gate the threaded backend exists under: bit-identical results."""
    ref = workload.run("numpy")
    got = workload.run("threaded")
    for name, a, b in zip(("out", "grad_x", "grad_w"), ref, got):
        assert np.array_equal(a, b), (
            f"threaded backend diverged from numpy on {workload.name}:{name}"
        )


def _assert_tiled_bitwise(workload) -> list[dict]:
    """Bitwise grid over TILE_SWEEP x TILE_WORKERS for one tiled workload.

    For each tile size the numpy reference runs the identical canonical
    schedule single-threaded; the threaded result must match it bit for bit
    at every worker count (different tile sizes are *different* canonical
    orders and are not compared to each other).
    """
    checked = []
    runner = getattr(workload, "run_full", workload.run)
    for tile in TILE_SWEEP:
        with tile_override(k_tile=tile, gradw_tile=tile, pull_tile=tile):
            ref = runner("numpy")
            for workers in TILE_WORKERS:
                set_num_workers(workers)
                got = runner("threaded")
                for name, a, b in zip(("out", "grad_x", "grad_w"), ref, got):
                    assert np.array_equal(a, b), (
                        f"tiled threaded run diverged from numpy on "
                        f"{workload.name}:{name} at tile={tile}, "
                        f"workers={workers}"
                    )
                checked.append({"tile": tile, "workers": workers})
    return checked


def _modeled_sweep(workload, repeats: int) -> dict:
    """Trace the threaded run serially; model every worker count from it."""
    best = None
    for _ in range(repeats):
        with trace_parallel() as regions:
            timer = time_callable(lambda: workload.run("threaded"),
                                  repeats=1, warmup=0)
        serial_wall = timer.minimum
        if best is None or serial_wall < best[0]:
            best = (serial_wall, regions)
    serial_wall, regions = best
    region_serial = sum(r.total_seconds for r in regions)
    outside = max(0.0, serial_wall - region_serial)
    modeled = {}
    for workers in WORKER_SWEEP:
        modeled[workers] = outside + sum(
            makespan(r.task_seconds, workers) for r in regions
        )
    return {"serial_wall": serial_wall, "modeled": modeled,
            "parallel_coverage": region_serial / serial_wall if serial_wall else 0.0}


def report_backend_scaling():
    seed_all(0)
    repeats = 5 if full_mode() else 3
    device = tesla_v100()
    old_workers = get_num_workers()
    rows, data_rows = [], []
    tile_grid: dict[str, list[dict]] = {}
    try:
        clear_plan_cache()
        for workload in _workloads():
            workload.run("numpy")  # warm every plan before timing anything
            _assert_bitwise(workload)
            if workload.tiles is not None:
                tile_grid[workload.name] = _assert_tiled_bitwise(workload)
            t_numpy = time_callable(
                lambda wl=workload: wl.run("numpy"), repeats=repeats, warmup=1
            ).median
            sweep = _modeled_sweep(workload, repeats=2)
            for workers in WORKER_SWEEP:
                set_num_workers(workers)
                measured = time_callable(
                    lambda wl=workload: wl.run("threaded"),
                    repeats=repeats, warmup=1,
                ).median
                modeled = sweep["modeled"][workers]
                gpusim = (
                    device.tiled_speedup(workers, workload.tiles)
                    if workload.tiles is not None
                    else device.parallel_speedup(workers)
                )
                row = {
                    "workload": workload.name,
                    "workers": workers,
                    "tiles": workload.tiles,
                    "numpy_ms": round(t_numpy * 1e3, 3),
                    "modeled_ms": round(modeled * 1e3, 3),
                    "speedup_modeled": round(sweep["serial_wall"] / modeled, 3),
                    "measured_wall_ms": round(measured * 1e3, 3),
                    "gpusim_speedup": round(gpusim, 3),
                    "parallel_coverage": round(sweep["parallel_coverage"], 3),
                }
                data_rows.append(row)
                rows.append([
                    workload.name, str(workers), f"{row['numpy_ms']:.2f}",
                    f"{row['modeled_ms']:.2f}", f"{row['speedup_modeled']:.2f}",
                    f"{row['measured_wall_ms']:.2f}",
                    f"{row['gpusim_speedup']:.2f}",
                ])
    finally:
        set_num_workers(old_workers)

    gate_rows = [r for r in data_rows if r["workers"] == GATE_WORKERS
                 and r["workload"] in GATE_WORKLOADS]
    for row in gate_rows:
        assert row["speedup_modeled"] >= GATE_SPEEDUP, (
            f"{row['workload']} modelled only {row['speedup_modeled']}x at "
            f"{GATE_WORKERS} workers (gate {GATE_SPEEDUP}x)"
        )

    table = format_table(
        ["Workload", "workers", "numpy (ms)", "threaded modeled (ms)",
         "modeled speedup", "threaded wall (ms)", "gpusim speedup"],
        rows,
        title="Threaded-backend scaling: measured numpy baseline vs "
              "traced-and-modelled worker sweep (bitwise-equal outputs "
              "asserted per workload)",
    )
    table += (
        "\nModeled = per-shard times traced serially, LPT-scheduled onto w"
        "\nlanes (valid on any host); wall = the real pool, which only"
        "\nspeeds up with >= w unloaded cores (see env.host_cpus in the"
        "\nJSON).  gpusim = DeviceSpec.parallel_speedup (tiled workloads:"
        "\ntiled_speedup at their schedule-table tile count), calibrated on"
        "\nthe modelled sweep so simulated and measured speedups stay"
        "\ncomparable."
    )
    data = {
        "worker_sweep": list(WORKER_SWEEP),
        "gate": {"workers": GATE_WORKERS, "min_speedup": GATE_SPEEDUP,
                 "workloads": list(GATE_WORKLOADS)},
        "bitwise_equal": True,
        "tile_grid_bitwise": tile_grid,
        "rows": data_rows,
    }
    return emit("backend_scaling", table, data=data), data


def test_backend_scaling_gate():
    _, data = report_backend_scaling()
    assert data["bitwise_equal"]
    at_gate = {r["workload"]: r for r in data["rows"]
               if r["workers"] == GATE_WORKERS}
    for name in GATE_WORKLOADS:
        assert at_gate[name]["speedup_modeled"] >= GATE_SPEEDUP, at_gate[name]
    # Every tiled workload passed the full tile x worker bitwise grid.
    for name in ("conv-dense-large", "pull-gemm-large"):
        grid = data["tile_grid_bitwise"][name]
        assert len(grid) == len(TILE_SWEEP) * len(TILE_WORKERS)
    # The gpusim curve describes the modelled sweep: every point within
    # 50% and the median drift within 25% (loose per point because the
    # traced shard times are noisy on a shared container; tight in the
    # median because the curve is one (s, c, combine) fit for all
    # workloads — tiled ones through the tiled_speedup variant).
    drifts = []
    for row in data["rows"]:
        if row["workers"] > 1 and row["workload"] in GATE_WORKLOADS:
            rel = abs(row["gpusim_speedup"] - row["speedup_modeled"])
            rel /= row["speedup_modeled"]
            assert rel < 0.50, row
            drifts.append(rel)
    drifts.sort()
    assert drifts[len(drifts) // 2] < 0.25, drifts


if __name__ == "__main__":
    report_backend_scaling()
