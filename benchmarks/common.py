"""Shared helpers for the benchmark harness (report IO, model prep)."""
from __future__ import annotations

import json
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def full_mode() -> bool:
    """Longer accuracy runs when REPRO_BENCH_FULL=1."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def execution_env() -> dict:
    """The execution-relevant environment a benchmark ran under.

    Recorded in every result JSON so the perf comparator can refuse to diff
    numbers produced by different kernel backends or pool sizes as if they
    were the same experiment.  The same stamp keys the persistent plan
    database (:mod:`repro.backend.plan_db` is the single source of truth).
    """
    from repro.backend import env_stamp

    return env_stamp()


def emit(report_name: str, text: str, data=None) -> str:
    """Print a report and persist it under benchmarks/results/.

    Every report is written twice: human-readable ``<name>.txt`` and
    machine-readable ``<name>.json`` so the perf trajectory can be tracked
    across PRs.  ``data`` is an optional JSON-serialisable payload (e.g. the
    table rows); non-serialisable values degrade to their ``str()``.  The
    payload always carries an ``env`` block (active backend, worker count,
    host CPUs) — see :func:`execution_env`.
    """
    banner = f"\n{'=' * 72}\n{report_name}\n{'=' * 72}\n"
    out = banner + text + "\n"
    print(out)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{report_name}.txt").write_text(out)
    payload = {
        "name": report_name,
        "env": execution_env(),
        "data": data,
        "text": text,
    }
    (RESULTS_DIR / f"{report_name}.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n"
    )
    return out


def reduced_training_setup(
    num_samples: int,
    image_size: int = 16,
    num_classes: int = 10,
    noise: float = 0.3,
    seed: int = 0,
    batch_size: int = 48,
):
    """Dataset + loaders for the CPU-scale accuracy experiments."""
    from repro.data import DataLoader, make_dataset, train_test_split

    ds = make_dataset(
        num_samples, num_classes=num_classes, image_size=image_size,
        noise=noise, seed=seed,
    )
    train, test = train_test_split(ds, 0.2, seed=seed)
    return (
        DataLoader(train, batch_size=batch_size, seed=seed + 1),
        DataLoader(test, batch_size=2 * batch_size, shuffle=False),
    )


def train_and_score(model, train_loader, test_loader, epochs: int, lr: float = 0.1):
    """Train a reduced model; return best test accuracy."""
    from repro.train import Trainer, TrainConfig

    trainer = Trainer(model, TrainConfig(epochs=epochs, lr=lr, momentum=0.9,
                                         weight_decay=5e-4))
    hist = trainer.fit(train_loader, test_loader)
    return hist.best_test_acc


def accuracy_protocol(seed: int = 2, batch_size: int = 48):
    """The calibrated reduced-scale accuracy-experiment setup.

    8-channel inputs make the cross-channel signal rich enough for grouping
    effects to matter; 12x12 images and depth-truncated models keep one
    training run at ~20s CPU.  Full mode doubles the data and epochs.
    """
    from repro.data import DataLoader, make_dataset, train_test_split

    samples = 1800 if full_mode() else 900
    ds = make_dataset(samples, num_classes=10, image_size=12, channels=8,
                      latents=8, noise=0.3, seed=seed)
    train, test = train_test_split(ds, 0.2, seed=seed)
    return (
        DataLoader(train, batch_size=batch_size, seed=seed + 1),
        DataLoader(test, batch_size=2 * batch_size, shuffle=False),
    )


def build_mini(name: str, scheme=None, cg: int = 2, co: float = 0.5,
               num_classes: int = 10):
    """Depth/width-reduced instance of a paper architecture that trains to
    well above chance in ~20s on CPU (see EXPERIMENTS.md, accuracy protocol)."""
    from repro.models import build_mobilenet, build_resnet, build_vgg

    if name == "mobilenet":
        return build_mobilenet(scheme=scheme, cg=cg, co=co, width_mult=0.5,
                               num_blocks=4, num_classes=num_classes, in_channels=8)
    if name in ("resnet18", "resnet50"):
        return build_resnet(name, scheme=scheme, cg=cg, co=co, width_mult=0.25,
                            stage_blocks=[1, 1], num_classes=num_classes,
                            in_channels=8)
    if name in ("vgg16", "vgg19"):
        from repro.models.vgg import VGG

        # First two VGG stages only (the 12x12 inputs allow two pools).
        plan = [64, 64, "M", 128, 128, "M"]
        return VGG(plan, num_classes=num_classes, in_channels=8, scheme=scheme,
                   cg=cg, co=co, width_mult=0.25)
    raise ValueError(f"no mini variant for {name!r}")
