"""Sharded serving scaling — worker processes vs the GIL-bound thread pool.

The process tier's reason to exist: a multi-model drain whose per-model
work is *GIL-bound* (the pure-python ``reference`` backend stands in for
scheduling/bookkeeping-heavy models) gains nothing from the in-process
thread pool — every shard time-slices one interpreter lock — but scales
across :class:`~repro.serve.ShardedRouter` worker processes.

Protocol (the bench_backend_scaling recipe, applied to processes):

1. **Bitwise gate** — every output served by a shard process is asserted
   bit-identical to the same registry model served by an in-process
   :class:`~repro.serve.Router` (shards rebuild weights deterministically
   from ``(name, seed)``; nothing numeric crosses a pipe untested).
2. **Measured serial drain** — the in-process router's per-model drain
   costs, traced with :func:`repro.backend.parallel.trace_parallel`
   (serial execution, clean per-task walls).  On GIL-bound work the
   single-process thread pool cannot beat this serial wall — the GIL *is*
   the serialisation — so it doubles as the thread-pool baseline.
3. **Modelled process sweep** —
   :func:`repro.gpusim.host_process_step_time` prices the same drains
   sharded over K worker processes: LPT makespan across lanes + the
   driving process's Amdahl residue + every RPC round trip and payload
   byte on the pipe fabric (``host_ipc_*``).  The gate: **>= 1.8x modelled
   throughput at 4 processes** vs the single-process baseline.
4. **Calibration drift** — ``DeviceSpec.process_speedup`` (the closed-form
   Amdahl curve the rest of gpusim quotes) must track the step-time model
   within the standard drift bounds, and the *measured* shard-pipe RPC
   latency is reported against ``host_ipc_latency`` so the constants stay
   honest on real hosts.

Measured multi-process wall time is reported alongside but not gated — on
a core-starved container the shard processes time-slice one core (see
``env.host_cpus`` in the JSON), which is exactly why the sweep is modelled
from clean serial traces.
"""
import time

import numpy as np

from common import emit, full_mode
from repro.backend.parallel import trace_parallel
from repro.gpusim import host_fabric_device, host_process_step_time, tesla_v100
from repro.serve import Router, ServingPolicy, ShardedRouter
from repro.utils import format_table, seed_all

INPUT = (3, 16, 16)
PROCESS_SWEEP = (1, 2, 4)
GATE_PROCESSES = 4
GATE_SPEEDUP = 1.8
#: (name, seed) per served model; the pure-python reference backend makes
#: each drain GIL-bound — the workload class the process tier targets.
MODELS = tuple((f"gate-{i}", 31 + i) for i in range(4))


def _register_all(front) -> None:
    for name, seed in MODELS:
        front.register(
            name, "mobilenet", input_shapes=[INPUT],
            scheme="scc", width_mult=0.25, impl="dsxplore",
            backend="reference", seed=seed,
        )


def _images(per_model: int):
    rng = np.random.default_rng(9)
    return {
        name: [rng.standard_normal(INPUT).astype(np.float32)
               for _ in range(per_model)]
        for name, _ in MODELS
    }


def _policy() -> ServingPolicy:
    # Max bucket above per-model request counts: nothing inline-flushes at
    # submit time, so the traced flush() owns the entire drain.
    return ServingPolicy(bucket_sizes=(1, 2, 4, 8, 16), max_latency=30.0)


def _assert_bitwise(images) -> int:
    """Shard-served outputs == in-process router outputs, bit for bit."""
    router = Router(server_config=_policy(), overlap=False)
    _register_all(router)
    expect = {}
    for name, _ in MODELS:
        handles = [router.submit(name, img) for img in images[name]]
        router.flush()
        expect[name] = [router.result(h).output for h in handles]

    checked = 0
    with ShardedRouter(shards=len(MODELS), server_config=_policy()) as sharded:
        _register_all(sharded)
        handles = {
            name: [sharded.submit(name, img) for img in images[name]]
            for name, _ in MODELS
        }
        # One broadcast flush: shard drains overlap across processes.
        sharded.flush()
        for name, _ in MODELS:
            for handle, ref in zip(handles[name], expect[name]):
                got = sharded.result(handle).output
                assert np.array_equal(ref, got), (
                    f"shard-served output diverged from in-process router "
                    f"for {name}"
                )
                checked += 1
    return checked


def _traced_drain(images, repeats: int):
    """Clean serial per-model drain costs + the wall around them.

    De-noised across repeats: the wall is the best observed, and the task
    costs are the elementwise minimum over the *sorted* per-repeat lists
    (LPT only needs the multiset), so a host-load spike that inflates one
    drain in one repeat cannot skew the makespan model.
    """
    walls, task_lists = [], []
    for _ in range(repeats):
        router = Router(server_config=_policy(), overlap=True)
        _register_all(router)
        for name, _ in MODELS:
            for img in images[name]:
                router.submit(name, img)
        with trace_parallel() as regions:
            start = time.perf_counter()
            router.flush()
            walls.append(time.perf_counter() - start)
        task_lists.append(sorted(t for r in regions for t in r.task_seconds))
    count = min(len(tasks) for tasks in task_lists)
    task_seconds = [min(tasks[i] for tasks in task_lists)
                    for i in range(count)]
    return min(walls), task_seconds


def _measured_ipc(images) -> dict:
    """Live shard-pipe RPC costs, reported against the DeviceSpec constants."""
    trips = 32
    with ShardedRouter(shards=2, server_config=_policy()) as sharded:
        _register_all(sharded)
        start = time.perf_counter()
        for _ in range(trips):
            sharded.reset_metrics()   # one no-op broadcast round trip
        latency = (time.perf_counter() - start) / trips
        payload = images[MODELS[0][0]][0]
        start = time.perf_counter()
        for _ in range(trips):
            sharded.submit(MODELS[0][0], payload)
        submit_seconds = time.perf_counter() - start
        bandwidth = trips * payload.nbytes / max(submit_seconds, 1e-9)
        sharded.flush()
    return {"measured_rpc_latency_s": latency,
            "measured_pipe_bandwidth_Bps": bandwidth,
            "rpc_trips": trips}


def report_sharded_router():
    seed_all(0)
    per_model = 8 if full_mode() else 4
    repeats = 5 if full_mode() else 3
    device = tesla_v100()
    images = _images(per_model)

    bitwise_checked = _assert_bitwise(images)
    serial_wall, task_seconds = _traced_drain(images, repeats)

    # IPC payload the process sweep must pay for: every image in and every
    # logits row out, plus one RPC per submit/result and one flush per shard.
    image_bytes = int(np.prod(INPUT)) * 4
    total_requests = per_model * len(MODELS)
    ipc_bytes = total_requests * (image_bytes + 10 * 4)
    rows, data_rows = [], []
    speedups = {}
    for processes in PROCESS_SWEEP:
        step = host_process_step_time(
            task_seconds, processes, device,
            ipc_bytes=ipc_bytes if processes > 1 else 0.0,
            round_trips=2 * total_requests + processes,
        )
        modeled = step.total
        speedup = serial_wall / modeled if modeled else 0.0
        speedups[processes] = speedup
        amdahl = device.process_speedup(processes)
        drift = abs(amdahl - speedup) / speedup if speedup else 0.0
        row = {
            "processes": processes,
            "serial_wall_ms": round(serial_wall * 1e3, 3),
            "modeled_ms": round(modeled * 1e3, 3),
            "modeled_compute_ms": round(step.compute * 1e3, 3),
            "modeled_ipc_ms": round(step.communication * 1e3, 3),
            "speedup_modeled": round(speedup, 3),
            "gpusim_process_speedup": round(amdahl, 3),
            "amdahl_drift": round(drift, 3),
        }
        data_rows.append(row)
        rows.append([
            str(processes), f"{row['serial_wall_ms']:.2f}",
            f"{row['modeled_ms']:.2f}", f"{row['modeled_ipc_ms']:.3f}",
            f"{row['speedup_modeled']:.2f}",
            f"{row['gpusim_process_speedup']:.2f}",
        ])

    gate_speedup = speedups[GATE_PROCESSES]
    assert gate_speedup >= GATE_SPEEDUP, (
        f"sharded router modelled only {gate_speedup:.2f}x at "
        f"{GATE_PROCESSES} processes (gate {GATE_SPEEDUP}x) — "
        f"tasks {task_seconds}"
    )
    # Calibration drift: the closed-form Amdahl curve must describe the
    # step-time model (same bounds bench_backend_scaling uses for the
    # thread pool: every point within 50%).
    for row in data_rows:
        if row["processes"] > 1:
            assert row["amdahl_drift"] < 0.50, row

    ipc = _measured_ipc(images)
    fabric = host_fabric_device(device)
    ipc["spec_rpc_latency_s"] = fabric.interconnect_latency
    ipc["spec_pipe_bandwidth_Bps"] = fabric.interconnect_bandwidth
    # Sanity gates only — real pipe numbers vary hugely across hosts; the
    # JSON trail is what keeps the DeviceSpec constants honest over time.
    assert ipc["measured_rpc_latency_s"] < 0.25, ipc
    assert ipc["measured_pipe_bandwidth_Bps"] > 1e5, ipc

    table = format_table(
        ["processes", "serial wall (ms)", "modeled (ms)", "IPC (ms)",
         "modeled speedup", "gpusim speedup"],
        rows,
        title="Sharded-router scaling: GIL-bound multi-model drain, "
              "traced serially and modelled across worker processes "
              "(shard outputs asserted bitwise-equal to in-process serving)",
    )
    table += (
        "\nSerial wall = the thread-pool baseline (GIL-bound drains cannot"
        "\noverlap in one interpreter); modeled = LPT makespan across"
        "\nprocesses + Amdahl dispatch residue + pipe RPC/payload costs"
        "\n(host_ipc_* constants).  gpusim = DeviceSpec.process_speedup,"
        "\nthe closed-form curve calibrated on this model.  Measured pipe"
        f"\nRPC latency: {ipc['measured_rpc_latency_s'] * 1e3:.2f} ms/trip"
        f" (spec {ipc['spec_rpc_latency_s'] * 1e3:.2f} ms)."
    )
    data = {
        "process_sweep": list(PROCESS_SWEEP),
        "gate": {"processes": GATE_PROCESSES, "min_speedup": GATE_SPEEDUP},
        "gate_speedup": round(gate_speedup, 3),
        "bitwise_equal": True,
        "bitwise_outputs_checked": bitwise_checked,
        "models": [name for name, _ in MODELS],
        "requests": total_requests,
        "task_seconds": [round(t, 6) for t in task_seconds],
        "ipc_calibration": ipc,
        "rows": data_rows,
    }
    return emit("sharded_router", table, data=data), data


def test_sharded_router_gate():
    _, data = report_sharded_router()
    assert data["bitwise_equal"]
    assert data["bitwise_outputs_checked"] == data["requests"]
    assert data["gate_speedup"] >= GATE_SPEEDUP
    at_gate = [r for r in data["rows"] if r["processes"] == GATE_PROCESSES]
    assert at_gate and at_gate[0]["amdahl_drift"] < 0.50


if __name__ == "__main__":
    report_sharded_router()
