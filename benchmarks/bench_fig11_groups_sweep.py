"""Figure 11 — runtime vs number of channel groups (cg), co=50%.

Paper: runtime falls as cg grows (smaller windows -> less work per output
channel), normalized to cg=1.  Modelled per model + measured real kernels.
"""
import numpy as np

from common import emit, full_mode
from repro.core.channel_map import SCCConfig
from repro.core.scc_kernels import Dsxplore
from repro.gpusim import extract_layer_shapes, tesla_v100, training_step_time
from repro.models import build_model
from repro.models.registry import PAPER_MODELS
from repro.utils import format_table, time_callable

CGS = (1, 2, 4, 8)
BATCH = 128


def modelled_sweep(device):
    rows = {}
    for name in PAPER_MODELS:
        times = []
        for cg in CGS:
            co = 0.5 if cg > 1 else 0.0   # cg=1 with overlap degenerates to PW
            model = build_model(name, scheme="scc", cg=cg, co=co)
            shapes = extract_layer_shapes(model, (3, 32, 32))
            times.append(training_step_time(shapes, BATCH, device).total)
        rows[name] = [t / times[0] for t in times]
    return rows


def measured_sweep(cin=64, cout=128, hw=16, n=8):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((n, cin, hw, hw)).astype(np.float32)
    g = rng.standard_normal((n, cout, hw, hw)).astype(np.float32)
    times = []
    repeats = 15 if full_mode() else 5
    for cg in CGS:
        co = 0.5 if cg > 1 else 0.0
        cfg = SCCConfig(cin, cout, cg, co)
        w = rng.standard_normal((cout, cfg.group_width)).astype(np.float32)
        strat = Dsxplore(cfg)

        def step():
            strat.forward(x, w)
            strat.backward(g)

        times.append(time_callable(step, repeats=repeats, warmup=2).median)
    return [t / times[0] for t in times]


def report_fig11(device=None):
    device = device or tesla_v100()
    rows = modelled_sweep(device)
    text = format_table(
        ["Model"] + [f"cg={c}" for c in CGS],
        [[n] + [f"{x:.0%}" for x in series] for n, series in rows.items()],
        title="Fig 11 — runtime vs cg, normalized to cg=1 (simulated V100, co=50%)",
    )
    meas = measured_sweep()
    text += "\n\nMeasured real kernels (one layer, 64->128, 16x16):\n"
    text += format_table([f"cg={c}" for c in CGS], [[f"{x:.0%}" for x in meas]])
    text += (
        "\nExpected shape (paper): monotone decrease with cg.  The modelled"
        "\nseries reproduces it; the CPU measurement is noisier because cg=1"
        "\nmaps to a single BLAS GEMM (near-peak CPU efficiency) while grouped"
        "\nconfigs run cyclic_dist smaller contractions — a CPU-only artifact"
        "\nthe GPU's fused one-thread-per-pixel kernel does not have."
    )
    return emit("fig11_groups_sweep", text), rows, meas


def test_fig11_monotone_decrease(device):
    _, rows, meas = report_fig11(device)
    for name, series in rows.items():
        assert all(series[i + 1] <= series[i] * 1.02 for i in range(len(series) - 1)), name
    # Real kernels: grouped configs stay in the same ballpark as the cg=1
    # full GEMM — cg x fewer FLOPs offsets BLAS's preference for one big
    # contraction (tight ordering is a GPU property; see report note).
    assert min(meas[1:]) < 1.6


def test_fig11_sweep_speed(benchmark, device):
    model = build_model("mobilenet", scheme="scc", cg=4, co=0.5)
    shapes = extract_layer_shapes(model, (3, 32, 32))
    benchmark(training_step_time, shapes, BATCH, device)


if __name__ == "__main__":
    report_fig11()
