"""Figure 10 — GPU memory with vs without channel-cyclic optimisation.

Modelled footprints for all five CNNs (paper reports 72.88%-83.33% savings),
cross-checked against the *measured* bytes the real NumPy kernels
materialise (KernelStats.bytes_materialized): without CC the composed
implementation would stack one window per filter; with CC only one window
per cycle position.
"""
import numpy as np

from common import emit
from repro.core.channel_map import SCCConfig
from repro.core.scc_kernels import ChannelStack, ConvStackCC
from repro.gpusim import MemoryModel, extract_layer_shapes, tesla_v100
from repro.models import build_model
from repro.models.registry import PAPER_MODELS
from repro.utils import format_table

BATCH = 128


def modelled_memory(device):
    mm = MemoryModel(device)
    rows = []
    for name in PAPER_MODELS:
        model = build_model(name, scheme="scc", cg=2, co=0.5)
        shapes = extract_layer_shapes(model, (3, 32, 32))
        without = mm.report(shapes, BATCH, "conv_stack", cc_enabled=False).total_mb
        with_cc = mm.report(shapes, BATCH, "conv_stack", cc_enabled=True).total_mb
        rows.append((name, without, with_cc, 1 - with_cc / without))
    return rows


def measured_layer_memory():
    """Real bytes materialised by one layer: channel-stack (== no-CC) vs
    conv-stack+CC."""
    cfg = SCCConfig(64, 128, 2, 0.5)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 64, 16, 16)).astype(np.float32)
    w = rng.standard_normal((128, 32)).astype(np.float32)
    chs = ChannelStack(cfg)
    chs.forward(x, w)
    cos = ConvStackCC(cfg)
    cos.forward(x, w)
    return chs.stats.bytes_materialized, cos.stats.bytes_materialized


def report_fig10(device=None):
    device = device or tesla_v100()
    rows = modelled_memory(device)
    text = format_table(
        ["Model", "w/o CC (MB)", "w/ CC (MB)", "saved"],
        [[n, f"{wo:.0f}", f"{w:.0f}", f"{s:.1%}"] for n, wo, w, s in rows],
        title=f"Fig 10 — memory w/ and w/o channel-cyclic optimisation (batch {BATCH})",
    )
    chs_bytes, cos_bytes = measured_layer_memory()
    text += (
        f"\nMeasured real-kernel duplication on one layer (64->128, cg2 co50%): "
        f"per-filter stacking {chs_bytes / 2**20:.1f} MB vs per-cycle {cos_bytes / 2**20:.1f} MB "
        f"({1 - cos_bytes / chs_bytes:.1%} saved)."
        "\nExpected shape (paper): 72.88% to 83.33% reduction."
    )
    return emit("fig10_memory_cc", text), rows


def test_fig10_savings_band(device):
    _, rows = report_fig10(device)
    for name, _, _, saving in rows:
        assert 0.40 < saving < 0.99, (name, saving)


def test_fig10_measured_duplication_ratio():
    chs_bytes, cos_bytes = measured_layer_memory()
    # cyclic_dist=4 distinct windows out of Cout=128 filters: 32x reduction.
    assert chs_bytes / cos_bytes == 32


def test_fig10_memory_report(benchmark, device):
    model = build_model("vgg16", scheme="scc", cg=2, co=0.5)
    shapes = extract_layer_shapes(model, (3, 32, 32))
    mm = MemoryModel(device)
    benchmark(mm.report, shapes, BATCH, "conv_stack")


if __name__ == "__main__":
    report_fig10()
