"""Ablation (beyond the paper's figures) — the fine-grained GEMM problem.

Paper Section III-B argues SCC cannot use stock GEMM because it needs
``Cout`` skewed GEMMs (one (HW x gw) x (gw x 1) product per filter); the
DSXplore fused kernel batches filters sharing a window into ``cyclic_dist``
contractions instead.  This bench measures exactly that contrast on real
NumPy kernels: per-filter contraction vs per-cycle batched contraction.
"""
import numpy as np

from common import emit, full_mode
from repro.core.channel_map import SCCConfig, channel_windows
from repro.core.scc_kernels import Dsxplore
from repro.utils import format_table, time_callable


def per_filter_forward(x, w, windows):
    """The skewed fine-grained formulation: one tiny GEMM per filter."""
    n, cin, h, wd = x.shape
    cout, gw = w.shape
    out = np.empty((n, cout, h, wd), dtype=x.dtype)
    for oid in range(cout):
        out[:, oid] = np.einsum(
            "nghw,g->nhw", x[:, windows[oid]], w[oid], optimize=True
        )
    return out


def report_ablation_vectorization():
    rows = []
    repeats = 15 if full_mode() else 5
    for cin, cout, hw in [(32, 64, 8), (64, 128, 16), (128, 256, 8)]:
        cfg = SCCConfig(cin, cout, 2, 0.5)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, cin, hw, hw)).astype(np.float32)
        w = rng.standard_normal((cout, cfg.group_width)).astype(np.float32)
        wins = channel_windows(cin, cout, 2, 0.5)
        fused = Dsxplore(cfg)
        np.testing.assert_allclose(
            per_filter_forward(x, w, wins), fused.forward(x, w), atol=1e-4
        )
        t_filter = time_callable(lambda: per_filter_forward(x, w, wins),
                                 repeats=repeats, warmup=1).median
        t_fused = time_callable(lambda: fused.forward(x, w),
                                repeats=repeats, warmup=1).median
        rows.append({
            "layer": f"{cin}->{cout}@{hw}x{hw}",
            "per_filter_gemms": cout,
            "per_cycle_gemms": fused.cyclic_dist,
            "per_filter_ms": t_filter * 1e3,
            "fused_ms": t_fused * 1e3,
            "speedup": t_filter / t_fused,
        })
    text = format_table(
        ["Layer", "per-filter GEMMs", "per-cycle GEMMs", "per-filter (ms)",
         "fused (ms)", "speedup"],
        [[r["layer"], r["per_filter_gemms"], r["per_cycle_gemms"],
          f"{r['per_filter_ms']:.2f}", f"{r['fused_ms']:.2f}",
          f"{r['speedup']:.1f}x"] for r in rows],
        title="Ablation — fine-grained skewed GEMMs vs cycle-batched fused kernel",
    )
    text += ("\nThis is the implementation gap of paper Section III-B: Cout tiny"
             "\ncontractions cannot amortise launch/dispatch overhead; batching by"
             "\nshared window (cyclic_dist groups) restores efficiency."
             "\nThe fused kernel additionally serves its segment tables and einsum"
             "\npaths from the repro.backend plan cache (see ablation_plan_cache).")
    return emit("ablation_vectorization", text, data=rows), rows


def test_ablation_fused_wins():
    _, rows = report_ablation_vectorization()
    for row in rows:
        assert row["speedup"] > 1.0, row


def test_ablation_per_filter(benchmark):
    cfg = SCCConfig(64, 128, 2, 0.5)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 64, 16, 16)).astype(np.float32)
    w = rng.standard_normal((128, 32)).astype(np.float32)
    wins = channel_windows(64, 128, 2, 0.5)
    benchmark(per_filter_forward, x, w, wins)


def test_ablation_fused(benchmark):
    cfg = SCCConfig(64, 128, 2, 0.5)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 64, 16, 16)).astype(np.float32)
    w = rng.standard_normal((128, 32)).astype(np.float32)
    strat = Dsxplore(cfg)
    benchmark(strat.forward, x, w)


if __name__ == "__main__":
    report_ablation_vectorization()
