"""Ablation (beyond the paper) — Shift+SCC vs DW+SCC spatial stages.

Paper Section II-B cites Shift convolution as the zero-FLOP alternative to
the depthwise stage.  Combining it with SCC gives a block whose *spatial*
stage costs nothing; this bench quantifies the cost delta and trains both
variants head-to-head on the reduced protocol.
"""
import numpy as np

from common import accuracy_protocol, emit, full_mode, train_and_score
from repro import nn
from repro.analysis import profile_model
from repro.core.blocks import make_separable_block
from repro.core.shift import ShiftSCCBlock
from repro.utils import format_table, seed_all


def _net(spatial: str):
    def block(cin, cout, stride):
        if spatial == "dw":
            return make_separable_block(cin, cout, stride=stride, scheme="scc",
                                        cg=2, co=0.5)
        # Shift has no stride; downsample first so the SCC stage runs at the
        # same resolution as in the DW variant (fair MACs comparison).
        mods: list[nn.Module] = []
        if stride > 1:
            mods.append(nn.MaxPool2d(stride))
        mods.append(ShiftSCCBlock(cin, cout, cg=2, co=0.5))
        return nn.Sequential(*mods)

    return nn.Sequential(
        nn.Conv2d(8, 16, 3, padding=1, bias=False),
        nn.BatchNorm2d(16), nn.ReLU(),
        block(16, 32, 2),
        block(32, 64, 2),
        nn.GlobalAvgPool2d(),
        nn.Linear(64, 10),
    )


def report_ablation_shift():
    rows = []
    accs = {}
    epochs = 10 if full_mode() else 6
    for spatial in ("dw", "shift"):
        seed_all(42)
        model = _net(spatial)
        prof = profile_model(model, (8, 12, 12))
        train_loader, test_loader = accuracy_protocol(seed=6)
        seed_all(42)
        acc = train_and_score(_net(spatial), train_loader, test_loader, epochs, lr=0.1)
        accs[spatial] = acc
        rows.append([f"{spatial.upper()}+SCC", f"{prof.mflops:.3f}",
                     f"{prof.total_params:,}", f"{acc:.3f}"])
    text = format_table(
        ["Block", "MFLOPs", "Params", "Best test acc"],
        rows,
        title="Ablation — DW+SCC vs Shift+SCC (zero-FLOP spatial stage)",
    )
    text += ("\nShift removes the depthwise stage's FLOPs and parameters entirely;"
             "\nthe question is how much spatial expressivity that costs.")
    return emit("ablation_shift_scc", text), accs


def test_shift_scc_cheaper_than_dw_scc():
    dw = profile_model(_net("dw"), (8, 12, 12))
    shift = profile_model(_net("shift"), (8, 12, 12))
    assert shift.total_params < dw.total_params
    assert shift.total_macs < dw.total_macs


def test_shift_scc_trains_above_chance():
    _, accs = report_ablation_shift()
    assert accs["shift"] > 0.2   # chance is 0.10
    assert accs["dw"] > 0.2


def test_shift_block_forward(benchmark):
    from repro.tensor import Tensor

    seed_all(0)
    block = ShiftSCCBlock(16, 32, cg=2, co=0.5)
    x = Tensor(np.zeros((8, 16, 12, 12), dtype=np.float32))
    benchmark.pedantic(lambda: block(x), rounds=3, iterations=1, warmup_rounds=1)


if __name__ == "__main__":
    report_ablation_shift()
