"""Figure 14 — multi-GPU scalability, 1..4 GPUs, normalized to 1 GPU.

Modelled with the ring-allreduce data-parallel timing model; the *algorithm*
itself (shard, compute, all-reduce, step) runs for real in
:class:`repro.train.DataParallelTrainer`, whose gradient math is verified
equivalent to single-device SGD in the test suite.
"""
import numpy as np

from common import emit
from repro.data import make_dataset
from repro.gpusim import data_parallel_step_time, extract_layer_shapes, tesla_v100
from repro.models import build_model
from repro.train import DataParallelTrainer
from repro.utils import format_table, seed_all

MODELS = ("vgg16", "mobilenet", "resnet18")
DEVICES = (1, 2, 3, 4)
BATCH = 512


def modelled_scaling(device):
    rows = {}
    for name in MODELS:
        model = build_model(name, scheme="scc", cg=2, co=0.5)
        shapes = extract_layer_shapes(model, (3, 32, 32))
        grad_bytes = 4 * sum(p.size for p in model.parameters())
        t1 = data_parallel_step_time(shapes, BATCH, 1, device, grad_bytes).total
        rows[name] = [
            t1 / data_parallel_step_time(shapes, BATCH, k, device, grad_bytes).total
            for k in DEVICES
        ]
    return rows


def real_data_parallel_demo():
    """Run the actual data-parallel algorithm on 4 virtual devices."""
    seed_all(31)
    ds = make_dataset(64, num_classes=4, image_size=8, seed=31)
    model = build_model("mobilenet", scheme="scc", cg=2, co=0.5,
                        width_mult=0.125, num_classes=4)
    dp = DataParallelTrainer(model, num_devices=4, lr=0.05, momentum=0.9)
    losses = [dp.train_step(ds.images, ds.labels)[0] for _ in range(3)]
    return losses


def report_fig14(device=None):
    device = device or tesla_v100()
    rows = modelled_scaling(device)
    text = format_table(
        ["Model"] + [f"{k}-GPU" for k in DEVICES],
        [[n] + [f"{s:.2f}x" for s in series] for n, series in rows.items()],
        title=f"Fig 14 — multi-GPU speedup (simulated, ring all-reduce, batch {BATCH})",
    )
    losses = real_data_parallel_demo()
    text += (
        f"\nReal 4-shard data-parallel training (CPU, math verified == 1-device SGD): "
        f"losses {', '.join(f'{l:.3f}' for l in losses)} (decreasing)."
        "\nExpected shape (paper): speedup grows with GPUs, approaching linear at 4"
        " (2-3 GPU gains partly offset by gradient-sync communication)."
    )
    return emit("fig14_multigpu", text), rows, losses


def test_fig14_scaling_shape(device):
    _, rows, losses = report_fig14(device)
    for name, series in rows.items():
        assert series[0] == 1.0 or abs(series[0] - 1.0) < 1e-9
        assert series[0] < series[1] < series[2] < series[3], name
        assert series[3] > 2.5, name                 # near-linear at 4
        assert series[1] < 2.0, name                 # sub-linear at 2
    assert losses[-1] < losses[0]


def test_fig14_parallel_step(benchmark):
    seed_all(31)
    ds = make_dataset(32, num_classes=4, image_size=8, seed=31)
    model = build_model("mobilenet", scheme="scc", cg=2, co=0.5,
                        width_mult=0.125, num_classes=4)
    dp = DataParallelTrainer(model, num_devices=4, lr=0.05)
    benchmark.pedantic(dp.train_step, args=(ds.images, ds.labels),
                       rounds=3, iterations=1)


if __name__ == "__main__":
    report_fig14()
