"""Perf-trajectory comparator: diff benchmarks/results/*.json across commits.

Every benchmark writes a machine-readable JSON report via ``common.emit``;
these are committed, so any two commits can be compared.  This script diffs
the current results directory against a baseline (a git ref, usually the
previous commit, or another directory) and **fails when a tracked metric
regresses by more than the threshold** (default 20%).

Direction is inferred from the metric name:

- higher is better: ``speedup``, ``throughput``, ``ratio``, ``hit_rate``,
  ``fill``, ``acc``, ``rps``;
- lower is better: ``_ms``, ``latency``, ``time``, ``p50``, ``p95``;
- anything else (counts, sizes, ids) is ignored.

``--ratios-only`` restricts the diff to dimensionless metrics (speedups,
hit rates, throughput ratios), which are robust across machines — that is
the mode CI runs, since the committed baselines come from a different box
than the CI runner.

Reports carry an ``env`` block (kernel backend, worker-pool size) written
by ``common.emit``; when the current and baseline reports were produced by
**different backends or pool sizes** the pair is skipped with a notice
instead of being diffed — a ``threaded``-run report regressing against a
``numpy`` baseline (or vice versa) is a configuration change, not a perf
trajectory signal.

Usage::

    python benchmarks/perf_compare.py --baseline-ref HEAD^ --ratios-only
    python benchmarks/perf_compare.py --baseline-dir /tmp/old-results
"""
from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

HIGHER_IS_BETTER = ("speedup", "throughput", "ratio", "hit_rate", "fill", "acc", "rps")
LOWER_IS_BETTER = ("_ms", "latency", "time", "p50", "p95")
RATIO_KEYS = ("speedup", "ratio", "hit_rate", "fill")


def metric_direction(key: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 untracked."""
    lowered = key.lower()
    if any(tag in lowered for tag in HIGHER_IS_BETTER):
        return +1
    if any(tag in lowered for tag in LOWER_IS_BETTER):
        return -1
    return 0


def collect_metrics(payload, prefix: str = "", ratios_only: bool = False) -> dict[str, float]:
    """Flatten a report's ``data`` into {path: value} for tracked metrics.

    List elements are keyed by a stable identity field when present
    (``workload``/``buckets``/``name``/``model``) so rows still line up when
    a benchmark gains or reorders rows.
    """
    metrics: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                metrics.update(collect_metrics(value, path, ratios_only))
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                if metric_direction(key) == 0:
                    continue
                if ratios_only and not any(tag in key.lower() for tag in RATIO_KEYS):
                    continue
                metrics[path] = float(value)
    elif isinstance(payload, list):
        for i, item in enumerate(payload):
            label = str(i)
            if isinstance(item, dict):
                for id_key in ("workload", "buckets", "name", "model", "label", "layer"):
                    if isinstance(item.get(id_key), str):
                        label = item[id_key]
                        break
            metrics.update(collect_metrics(item, f"{prefix}[{label}]", ratios_only))
    return metrics


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float,
    noise_floor: float = 0.0,
) -> list[dict]:
    """Regressions: tracked metrics that moved >threshold in the bad direction.

    ``noise_floor`` (when > 0) exempts *unbounded* ratio metrics (speedups,
    throughput ratios) whose baseline sits below it: a ratio near 1.0 is
    dominated by measurement noise on sub-millisecond rows, so a 20%
    relative gate on it only flaps.  Bounded, deterministic rates
    (``hit_rate``, ``fill``) are always gated.
    """
    regressions = []
    for path, base_value in baseline.items():
        if path not in current or base_value == 0:
            continue
        key = path.rsplit(".", 1)[-1].lower()
        direction = metric_direction(key)
        if direction == 0:
            continue
        if (
            noise_floor
            and any(tag in key for tag in ("speedup", "ratio"))
            and abs(base_value) < noise_floor
        ):
            continue
        change = (current[path] - base_value) / abs(base_value)
        if direction * change < -threshold:
            regressions.append({
                "metric": path,
                "baseline": base_value,
                "current": current[path],
                "change": change,
            })
    return regressions


def _load_json(text: str) -> dict | None:
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return None


# env keys that must match for two reports to be comparable.  host_cpus is
# deliberately absent: machine changes are what --ratios-only absorbs.
_ENV_MATCH_KEYS = ("backend", "num_workers")


def env_mismatch(current: dict, baseline: dict) -> str | None:
    """Why two payloads must not be diffed, or None when comparable.

    Reports written before the ``env`` block existed are grandfathered:
    the guard only applies when *both* sides carry an env block, so the
    first env-stamped run still diffs against its legacy baseline.
    """
    cur_env = current.get("env") or {}
    base_env = baseline.get("env") or {}
    if not cur_env or not base_env:
        return None
    for key in _ENV_MATCH_KEYS:
        cur, base = cur_env.get(key), base_env.get(key)
        if cur != base:
            return f"{key} changed ({base!r} -> {cur!r})"
    return None


def baseline_from_git(ref: str, name: str) -> dict | None:
    """The committed report at ``ref``, or None if absent there."""
    rel = (RESULTS_DIR / name).relative_to(REPO_ROOT).as_posix()
    proc = subprocess.run(
        ["git", "show", f"{ref}:{rel}"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    return _load_json(proc.stdout)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--baseline-ref", default="HEAD^",
                        help="git ref holding the baseline results (default HEAD^)")
    parser.add_argument("--baseline-dir", type=Path, default=None,
                        help="compare against a directory instead of a git ref")
    parser.add_argument("--results-dir", type=Path, default=RESULTS_DIR)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative regression that fails the check (default 0.20)")
    parser.add_argument("--ratios-only", action="store_true",
                        help="only compare dimensionless metrics (machine-robust)")
    parser.add_argument("--noise-floor", type=float, default=0.0,
                        help="exempt speedup/ratio metrics whose baseline is "
                             "below this value (near-1.0 ratios are noise-bound)")
    args = parser.parse_args(argv)

    reports = sorted(args.results_dir.glob("*.json"))
    if not reports:
        print(f"no results under {args.results_dir}; nothing to compare")
        return 0

    all_regressions: list[dict] = []
    compared = skipped = 0
    for report in reports:
        current_payload = _load_json(report.read_text())
        if current_payload is None:
            print(f"  {report.name}: unreadable current report, skipped")
            skipped += 1
            continue
        if args.baseline_dir is not None:
            base_path = args.baseline_dir / report.name
            baseline_payload = (
                _load_json(base_path.read_text()) if base_path.exists() else None
            )
        else:
            baseline_payload = baseline_from_git(args.baseline_ref, report.name)
        if baseline_payload is None:
            print(f"  {report.name}: no baseline (new benchmark?), skipped")
            skipped += 1
            continue
        mismatch = env_mismatch(current_payload, baseline_payload)
        if mismatch is not None:
            print(f"  {report.name}: incomparable environments, skipped "
                  f"({mismatch})")
            skipped += 1
            continue
        current = collect_metrics(current_payload.get("data"), ratios_only=args.ratios_only)
        baseline = collect_metrics(baseline_payload.get("data"), ratios_only=args.ratios_only)
        regressions = compare(current, baseline, args.threshold, args.noise_floor)
        print(f"  {report.name}: {len(current)} tracked metrics, "
              f"{len(regressions)} regression(s)")
        for r in regressions:
            r["report"] = report.name
        all_regressions.extend(regressions)
        compared += 1

    print(f"\ncompared {compared} report(s), skipped {skipped}, "
          f"threshold {args.threshold:.0%}"
          + (" (ratios only)" if args.ratios_only else ""))
    if all_regressions:
        print("\nPERF REGRESSIONS:")
        for r in sorted(all_regressions, key=lambda r: r["change"]):
            print(f"  {r['report']} :: {r['metric']}: "
                  f"{r['baseline']:.4g} -> {r['current']:.4g} "
                  f"({r['change']:+.1%})")
        return 1
    print("no perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
