"""Table V — inference latency: DW+GPW (cuDNN-backed) vs DSXplore, VGG16.

Two columns per batch size:

- *modelled* latency on the simulated V100 for the full-size networks
  (paper's absolute milliseconds are V100 numbers), and
- *measured* CPU latency on width-reduced networks (same comparison, our
  hardware).

Paper shape: DW+GPW slightly ahead at small batch (cuDNN's highly-engineered
GEMMs), DSXplore comparable and winning at large batch.
"""
import numpy as np

from common import emit, full_mode
from repro.gpusim import extract_layer_shapes, inference_time, tesla_v100
from repro.models import build_model
from repro.tensor import Tensor, no_grad
from repro.utils import format_table, seed_all, time_callable

PAPER_TABLE5 = {16: (6, 8), 32: (10, 11), 64: (10, 16), 128: (17, 28), 256: (79, 75), 512: (90, 79)}

BATCHES = (16, 32, 64, 128, 256, 512)


def modelled_rows(device):
    gpw = build_model("vgg16", scheme="gpw", cg=2)
    dsx = build_model("vgg16", scheme="scc", cg=2, co=0.5)
    gpw_shapes = extract_layer_shapes(gpw, (3, 32, 32))
    dsx_shapes = extract_layer_shapes(dsx, (3, 32, 32))
    rows = []
    for b in BATCHES:
        t_gpw = inference_time(gpw_shapes, b, device).total * 1e3
        t_dsx = inference_time(dsx_shapes, b, device, scc_strategy="dsxplore").total * 1e3
        rows.append((b, t_gpw, t_dsx))
    return rows


def measured_rows():
    seed_all(17)
    gpw = build_model("vgg16", scheme="gpw", cg=2, width_mult=0.125).eval()
    seed_all(17)
    dsx = build_model("vgg16", scheme="scc", cg=2, co=0.5, width_mult=0.125).eval()
    batches = BATCHES if full_mode() else (16, 64)
    rows = []
    rng = np.random.default_rng(0)
    for b in batches:
        x = Tensor(rng.standard_normal((b, 3, 32, 32)).astype(np.float32))

        def run_gpw():
            with no_grad():
                gpw(x)

        def run_dsx():
            with no_grad():
                dsx(x)

        repeats = 5 if full_mode() else 3
        t_gpw = time_callable(run_gpw, repeats=repeats, warmup=1).median * 1e3
        t_dsx = time_callable(run_dsx, repeats=repeats, warmup=1).median * 1e3
        rows.append((b, t_gpw, t_dsx))
    return rows


def report_table5(device=None):
    device = device or tesla_v100()
    model_rows = modelled_rows(device)
    meas_rows = measured_rows()
    text = format_table(
        ["Batch", "DW+GPW model (ms)", "DSXplore model (ms)",
         "DW+GPW paper (ms)", "DSXplore paper (ms)"],
        [[b, f"{g:.1f}", f"{d:.1f}", PAPER_TABLE5[b][0], PAPER_TABLE5[b][1]]
         for b, g, d in model_rows],
        title="Table V — VGG16 inference latency (simulated V100, full-size)",
    )
    text += "\n\nMeasured on this CPU (width-0.125 models):\n"
    text += format_table(
        ["Batch", "DW+GPW (ms)", "DSXplore (ms)"],
        [[b, f"{g:.1f}", f"{d:.1f}"] for b, g, d in meas_rows],
    )
    text += "\nExpected shape: comparable latency; DSXplore competitive despite no cuDNN."
    return emit("table5_inference", text), model_rows, meas_rows


def test_table5_comparable_latency(device):
    _, model_rows, _ = report_table5(device)
    for b, g, d in model_rows:
        ratio = d / g
        assert 0.3 < ratio < 3.5, f"batch {b}: DSXplore/GPW latency ratio {ratio:.2f}"


def test_table5_inference_kernel(benchmark):
    seed_all(17)
    model = build_model("vgg16", scheme="scc", cg=2, co=0.5, width_mult=0.125).eval()
    x = Tensor(np.zeros((16, 3, 32, 32), dtype=np.float32))

    def run():
        with no_grad():
            return model(x)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


if __name__ == "__main__":
    report_table5()
