"""Plan auto-tuner gate (beyond the paper's figures) — ``repro.tune`` must
never lose to the static schedule tables, and its database must survive a
process boundary.

Protocol:

1. **Tune** the gate workload set (the scaling bench's tiled dense conv and
   pull-GEMM, plus one deliberately *off-table* conv whose static fallback
   leaves the forward contraction untiled) into a fresh
   :class:`~repro.backend.plan_db.PlanDatabase` file.  Candidates are
   measured with the same trace-serially / model-the-LPT-schedule protocol
   as ``bench_backend_scaling`` (see that module's docstring for why that
   is the only meaningful comparison on a core-starved host).
2. **Never-worse gate** — on *every* gate workload the tuned schedule's
   modelled cost must be <= the static schedule's (the static point is in
   the candidate set, so a tuner that loses to it is broken, not unlucky).
3. **Off-table win gate** — on the off-table workload the tuned schedule
   must be *strictly* better: the whole reason the tuner exists is the
   workloads the hand-written tables don't cover.
4. **Round-trip gate** — a fresh interpreter pointed at the produced file
   via ``REPRO_PLAN_DB`` must resolve exactly the recorded tiles into its
   built plans (subprocess, not in-process: this is the persistence
   contract fleets rely on).
"""
import json
import os
import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

from common import emit, full_mode
from repro.backend.plan_db import PlanDatabase
from repro.tune import gate_workloads, tune_workloads
from repro.utils import format_table

# Modelled target pool size, matching bench_backend_scaling's gate: worker
# counts are modelled from one serial trace, so tuning "for 4 workers" is
# meaningful even on a 1-core container.
TUNE_WORKERS = 4

_SRC = Path(__file__).resolve().parents[1] / "src"

_ROUNDTRIP_SCRIPT = textwrap.dedent(
    """
    import json, sys
    from repro.backend import conv2d_plan, scc_plan
    from repro.core.channel_map import SCCConfig

    resolved = {}
    for spec in json.loads(sys.argv[1]):
        if spec["kind"] == "conv2d":
            plan = conv2d_plan(tuple(spec["x_shape"]), tuple(spec["w_shape"]),
                               spec["stride"], spec["padding"], 1, "float32")
            resolved[spec["name"]] = {"k_tile": plan.k_tile,
                                      "gradw_tile": plan.gradw_tile}
        else:
            plan = scc_plan(SCCConfig(*spec["cfg"]))
            resolved[spec["name"]] = {"pull_tile": plan.pull_tile}
    print(json.dumps(resolved))
    """
)


def _subprocess_resolved_tiles(db_path: Path, specs: list[dict]) -> dict:
    """Resolve every spec's schedule in a fresh interpreter under
    ``REPRO_PLAN_DB`` — the cross-process half of the persistence gate."""
    env = dict(os.environ)
    env["REPRO_PLAN_DB"] = str(db_path)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(_SRC), env.get("PYTHONPATH", "")) if p
    )
    out = subprocess.run(
        [sys.executable, "-c", _ROUNDTRIP_SCRIPT, json.dumps(specs)],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout)


def report_plan_tuner():
    specs = gate_workloads(full=full_mode())
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "plans.jsonl"
        db = PlanDatabase(db_path)
        results = tune_workloads(
            specs, db=db, workers=TUNE_WORKERS, repeats=3 if full_mode() else 2
        )

        # Gate 2+3: never worse than static anywhere, strictly better off
        # the table.
        for res in results:
            assert res.best.score_s <= res.static.score_s, (
                f"tuned schedule lost to static on {res.name}: "
                f"{res.best.score_s} > {res.static.score_s}"
            )
        off = [r for r in results if r.record.get("off_table")]
        assert off, "gate set must include an off-table workload"
        for res in off:
            assert res.best.score_s < res.static.score_s, (
                f"tuner failed to beat the fallback heuristic on the "
                f"off-table workload {res.name}"
            )

        # Gate 4: a fresh process resolves the recorded tiles from disk.
        resolved = _subprocess_resolved_tiles(db_path, specs)
        roundtrip_rows = []
        for res, spec in zip(results, specs):
            tile_keys = (
                ("k_tile", "gradw_tile") if spec["kind"] == "conv2d"
                else ("pull_tile",)
            )
            recorded = {k: res.best.tiles[k] for k in tile_keys}
            got = resolved[res.name]
            assert got == recorded, (
                f"plan database round-trip mismatch on {res.name}: "
                f"fresh process resolved {got}, tuner recorded {recorded}"
            )
            roundtrip_rows.append({"workload": res.name, **got})

    rows = []
    for res in results:
        rows.append([
            res.name + (" (off-table)" if res.record.get("off_table") else ""),
            f"{res.static.describe()} {res.static.score_s * 1e3:.2f}ms",
            f"{res.best.describe()} {res.best.score_s * 1e3:.2f}ms",
            f"x{res.speedup_vs_static:.2f}",
            len(res.candidates),
        ])

    lines = [
        format_table(
            ["workload", "static", "tuned", "tuned_speedup", "candidates"],
            rows,
        ),
        "",
        f"modelled for {TUNE_WORKERS} workers; static schedule always in the "
        "candidate set, so tuned <= static by construction (asserted).",
        f"round-trip: fresh process under REPRO_PLAN_DB resolved "
        f"{len(roundtrip_rows)} tuned schedules bit-for-bit from disk.",
    ]
    data = {
        "workers": TUNE_WORKERS,
        "results": [
            {
                "workload": res.name,
                "off_table": bool(res.record.get("off_table")),
                "static_score_ms": res.static.score_s * 1e3,
                "tuned_score_ms": res.best.score_s * 1e3,
                "tuned_speedup": res.speedup_vs_static,
                "plan": dict(res.record["plan"]),
            }
            for res in results
        ],
        "min_tuned_speedup": min(r.speedup_vs_static for r in results),
        "offtable_tuned_speedup": min(r.speedup_vs_static for r in off),
        "roundtrip": roundtrip_rows,
    }
    emit("plan_tuner", "\n".join(lines), data)


if __name__ == "__main__":
    report_plan_tuner()
