"""Figure 9 — backward-pass time: Base / Opt / DSXplore-Var / DSXplore.

The input-centric backward ablation.  Three outputs:

- modelled BP-only runtimes for all five CNNs (simulated V100),
- measured BP-only runtimes of the real NumPy kernels on a representative
  SCC layer stack (the scatter/`np.add.at` cost of the output-centric design
  is real on CPU too),
- the atomic-operation reduction counter (paper: input-centric removes >90%
  of atomics, measured with NVProf; we count scatter updates directly).
"""
import numpy as np

from common import emit, full_mode
from repro.core.channel_map import SCCConfig
from repro.core.scc_kernels import ChannelStack, ConvStackCC, Dsxplore
from repro.gpusim import extract_layer_shapes, tesla_v100
from repro.gpusim.timeline import backward_only_time
from repro.models import build_model
from repro.models.registry import PAPER_MODELS
from repro.utils import format_table, time_callable

BATCH = 128


def modelled_bp_times(device):
    rows = []
    for name in PAPER_MODELS:
        model = build_model(name, scheme="scc", cg=2, co=0.5)
        shapes = extract_layer_shapes(model, (3, 32, 32))
        base = backward_only_time(shapes, BATCH, device, "channel_stack")
        opt = backward_only_time(shapes, BATCH, device, "conv_stack")
        var = backward_only_time(shapes, BATCH, device, "dsxplore", "output_centric")
        dsx = backward_only_time(shapes, BATCH, device, "dsxplore", "input_centric")
        rows.append((name, base, opt, var, dsx))
    return rows


def measured_layer_bp(cin=64, cout=128, hw=16, n=8):
    """Real-kernel backward times on one SCC layer."""
    cfg = SCCConfig(cin, cout, 2, 0.5)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((n, cin, hw, hw)).astype(np.float32)
    w = rng.standard_normal((cout, cfg.group_width)).astype(np.float32)
    g = rng.standard_normal((n, cout, hw, hw)).astype(np.float32)
    strategies = {
        "Pytorch-Base": ChannelStack(cfg),
        "Pytorch-Opt": ConvStackCC(cfg),
        "DSXplore-Var": Dsxplore(cfg, backward_design="output_centric"),
        "DSXplore": Dsxplore(cfg, backward_design="input_centric"),
    }
    times, atomics = {}, {}
    repeats = 20 if full_mode() else 7
    for label, strat in strategies.items():
        strat.forward(x, w)
        times[label] = time_callable(lambda s=strat: s.backward(g),
                                     repeats=repeats, warmup=2).median
        atomics[label] = strat.stats.scatter_adds
    return times, atomics


def report_fig9(device=None):
    device = device or tesla_v100()
    rows = modelled_bp_times(device)
    text = format_table(
        ["Model", "Pytorch-Base (s)", "Pytorch-Opt (s)", "DSXplore-Var (s)", "DSXplore (s)"],
        [[n, f"{b:.4f}", f"{o:.4f}", f"{v:.4f}", f"{d:.4f}"] for n, b, o, v, d in rows],
        title=f"Fig 9 — backward-pass runtime (simulated V100, batch {BATCH})",
    )
    speedups = [(b / d, o / d, v / d) for _, b, o, v, d in rows]
    avg = np.mean(speedups, axis=0)
    text += (f"\nAverage DSXplore speedup: {avg[0]:.2f}x vs Base, {avg[1]:.2f}x vs Opt, "
             f"{avg[2]:.2f}x vs Var (paper: 15.03x / 4.55x / 1.55x).")

    times, atomics = measured_layer_bp()
    text += "\n\nMeasured real-kernel backward on one SCC layer (64->128, 16x16, batch 8):\n"
    text += format_table(
        ["Implementation", "backward (ms)", "scatter updates"],
        [[k, f"{v * 1e3:.2f}", f"{atomics[k]:,}"] for k, v in times.items()],
    )
    removed = 1 - atomics["DSXplore"] / max(atomics["DSXplore-Var"], 1)
    text += (f"\nAtomic/scatter updates removed by input-centric design: "
             f"{removed:.1%} (paper: >90% via NVProf).")
    return emit("fig9_backward", text), rows, times, atomics


def test_fig9_ordering(device):
    _, rows, times, atomics = report_fig9(device)
    for name, base, opt, var, dsx in rows:
        assert dsx < var, name         # input-centric beats output-centric
        assert dsx < opt < base, name  # and the composed-op strategies
    assert times["DSXplore"] < times["DSXplore-Var"]   # real kernels agree
    assert atomics["DSXplore"] == 0
    assert atomics["DSXplore-Var"] > 0


def test_fig9_input_centric_backward(benchmark):
    cfg = SCCConfig(64, 128, 2, 0.5)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 64, 16, 16)).astype(np.float32)
    w = rng.standard_normal((128, 32)).astype(np.float32)
    g = rng.standard_normal((8, 128, 16, 16)).astype(np.float32)
    strat = Dsxplore(cfg)
    strat.forward(x, w)
    benchmark(strat.backward, g)


def test_fig9_output_centric_backward(benchmark):
    cfg = SCCConfig(64, 128, 2, 0.5)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 64, 16, 16)).astype(np.float32)
    w = rng.standard_normal((128, 32)).astype(np.float32)
    g = rng.standard_normal((8, 128, 16, 16)).astype(np.float32)
    strat = Dsxplore(cfg, backward_design="output_centric")
    strat.forward(x, w)
    benchmark(strat.backward, g)


if __name__ == "__main__":
    report_fig9()
