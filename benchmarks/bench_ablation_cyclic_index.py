"""Ablation (beyond the paper's figures) — Algorithm 2 index reuse.

DSXplore computes the per-filter channel windows once per layer (the first
cycle) and reuses them via ``oid % cyclic_dist`` (Algorithms 1+2).  This
bench quantifies that choice: window setup cost with reuse vs recomputing
the window of every filter from scratch, across layer widths.
"""
import numpy as np

from common import emit, full_mode
from repro.core.channel_map import SCCConfig, channel_windows, compute_channel_cycle
from repro.utils import format_table, time_callable


def windows_without_reuse(cin: int, cout: int, cg: int, co: float) -> np.ndarray:
    """Recompute every filter's window by iterating Algorithm 1 to oid."""
    cfg = SCCConfig(cin, cout, cg, co)
    gw = cfg.group_width
    out = np.empty((cout, gw), dtype=np.int64)
    start_v, end_v = 0, gw
    start = 0
    for oid in range(cout):
        out[oid] = (start + np.arange(gw)) % cin
        start_v = end_v - cfg.overlap_channels
        end_v = start_v + gw
        start = start_v % cin
    return out


def report_ablation_cyclic():
    rows = []
    repeats = 30 if full_mode() else 10
    for cin, cout in [(64, 128), (256, 512), (512, 1024)]:
        t_reuse = time_callable(
            lambda: channel_windows(cin, cout, 2, 0.5), repeats=repeats, warmup=2
        ).median
        t_naive = time_callable(
            lambda: windows_without_reuse(cin, cout, 2, 0.5), repeats=repeats, warmup=2
        ).median
        cd = len(compute_channel_cycle(cin, 2, 0.5, cout))
        rows.append([f"{cin}->{cout}", cd, f"{t_naive * 1e6:.0f}",
                     f"{t_reuse * 1e6:.0f}", f"{t_naive / t_reuse:.1f}x"])
    text = format_table(
        ["Layer", "cyclic_dist", "per-filter (us)", "Alg-2 reuse (us)", "speedup"],
        rows,
        title="Ablation — Algorithm-2 cyclic index reuse vs per-filter recomputation",
    )
    text += "\n(Indexes are also computed once per layer lifetime in DSXplore, so this\ncost is fully amortised; the ablation isolates the paper's Algorithm 2 claim.)"
    return emit("ablation_cyclic_index", text), rows


def test_ablation_results_equal():
    a = channel_windows(64, 128, 2, 0.5)
    b = windows_without_reuse(64, 128, 2, 0.5)
    np.testing.assert_array_equal(a, b)


def test_ablation_report():
    report_ablation_cyclic()


def test_ablation_window_reuse(benchmark):
    benchmark(channel_windows, 512, 1024, 2, 0.5)


def test_ablation_window_naive(benchmark):
    benchmark(windows_without_reuse, 512, 1024, 2, 0.5)


if __name__ == "__main__":
    report_ablation_cyclic()
