"""Ablation (beyond the paper's figures) — the execution-plan cache.

Training repeats the same layer shapes every step, yet the seed code
rebuilt its execution machinery per call: window/cycle/segment index tables
on every strategy construction and an ``np.einsum_path`` search inside every
``optimize=True`` contraction.  The :mod:`repro.backend` plan cache keys all
of that on a Workload descriptor (shapes, cg/co, stride/padding/groups,
dtype) and reuses it.

This bench measures exactly that contrast on real kernels: *cold* execution
(plan cache cleared and the strategy/plan rebuilt before every call — the
per-call-recomputation model) vs *warm* execution (plans served from the
cache, as every training step after the first).
"""
import numpy as np

from common import emit, full_mode
from repro.backend import clear_plan_cache, conv2d_plan, get_kernel, plan_cache_stats
from repro.core.channel_map import SCCConfig
from repro.core.scc_kernels import Dsxplore
from repro.utils import format_table, time_callable


def _scc_case(cin, cout, hw, batch=8, cg=2, co=0.5, seed=0):
    cfg = SCCConfig(cin, cout, cg, co)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, cin, hw, hw)).astype(np.float32)
    w = rng.standard_normal((cout, cfg.group_width)).astype(np.float32)
    return cfg, x, w


def scc_cold_step(cfg, x, w):
    """Per-call recomputation: index tables + contraction paths rebuilt."""
    clear_plan_cache()
    strat = Dsxplore(cfg)
    out = strat.forward(x, w)
    strat.backward(out)


def scc_warm_step(strat, x, w):
    """Cached plans: every lookup is a hit after the first call."""
    out = strat.forward(x, w)
    strat.backward(out)


def conv_cold_step(x, w):
    clear_plan_cache()
    plan = conv2d_plan(x.shape, w.shape, 1, 1, 1, x.dtype)
    out, ctx = get_kernel("conv2d")(plan, x, w)
    get_kernel("conv2d_backward")(plan, ctx, out)


def conv_warm_step(x, w):
    plan = conv2d_plan(x.shape, w.shape, 1, 1, 1, x.dtype)
    out, ctx = get_kernel("conv2d")(plan, x, w)
    get_kernel("conv2d_backward")(plan, ctx, out)


def report_ablation_plan_cache():
    # Enough repeats that the sub-millisecond rows' medians are stable: the
    # perf-trajectory comparator gates CI on these speedups, so measurement
    # noise must stay well inside its 20% threshold.
    repeats = 60 if full_mode() else 25
    rows = []
    # Warm-phase cache counters, aggregated across workloads.  Warm is timed
    # *before* cold for each workload because the cold steps clear the cache
    # (and with it the hit/miss counters).
    warm_cache = {"plans": 0, "hits": 0, "misses": 0}

    def run_case(label, warm_fn, cold_fn):
        warm_fn()   # populate the cache once
        base = plan_cache_stats()
        t_warm = time_callable(warm_fn, repeats=repeats, warmup=1).median
        after = plan_cache_stats()
        warm_cache["plans"] = max(warm_cache["plans"], after["size"])
        warm_cache["hits"] += after["hits"] - base["hits"]
        warm_cache["misses"] += after["misses"] - base["misses"]
        t_cold = time_callable(cold_fn, repeats=repeats, warmup=1).median
        rows.append({
            "workload": label,
            "cold_ms": round(t_cold * 1e3, 3),
            "warm_ms": round(t_warm * 1e3, 3),
            "speedup": t_cold / t_warm,
        })

    for cin, cout, hw in [(32, 64, 8), (64, 128, 8), (64, 256, 4)]:
        cfg, x, w = _scc_case(cin, cout, hw)
        strat = Dsxplore(cfg)
        run_case(f"scc {cin}->{cout}@{hw}x{hw}",
                 lambda: scc_warm_step(strat, x, w),
                 lambda: scc_cold_step(cfg, x, w))

    rng = np.random.default_rng(1)
    # Small conv workloads: per-call compute must not drown the plan cost
    # (the cache's win is amortising plan construction, not the GEMM).
    for cin, cout, hw in [(8, 16, 6), (16, 32, 4)]:
        x = rng.standard_normal((2, cin, hw, hw)).astype(np.float32)
        w = rng.standard_normal((cout, cin, 3, 3)).astype(np.float32)
        run_case(f"conv3x3 {cin}->{cout}@{hw}x{hw}",
                 lambda x=x, w=w: conv_warm_step(x, w),
                 lambda x=x, w=w: conv_cold_step(x, w))

    table = format_table(
        ["Workload (fwd+bwd)", "cold / plan rebuilt (ms)", "warm / plan cached (ms)",
         "speedup"],
        [[r["workload"], f"{r['cold_ms']:.3f}", f"{r['warm_ms']:.3f}",
          f"{r['speedup']:.1f}x"] for r in rows],
        title="Ablation — execution-plan cache vs per-call recomputation",
    )
    table += (
        f"\nWarm phases combined: {warm_cache['hits']} plan-cache hits, "
        f"{warm_cache['misses']} misses (peak {warm_cache['plans']} plans live)."
        "\nCold models the seed behaviour: window/cycle/segment tables rebuilt"
        "\nper strategy construction, einsum_path searched per contraction."
        "\nWarm is every training step after the first on repeated shapes."
    )
    return emit("ablation_plan_cache", table,
                data={"rows": rows, "warm_cache": warm_cache}), rows


def test_plan_cache_beats_recomputation():
    _, rows = report_ablation_plan_cache()
    assert all(r["speedup"] > 1.0 for r in rows), rows
    # The win must be systematic, not a single lucky row.
    assert np.median([r["speedup"] for r in rows]) > 1.1, rows


def test_plan_cache_scc_warm(benchmark):
    cfg, x, w = _scc_case(64, 128, 8)
    strat = Dsxplore(cfg)
    scc_warm_step(strat, x, w)
    benchmark(scc_warm_step, strat, x, w)


def test_plan_cache_scc_cold(benchmark):
    cfg, x, w = _scc_case(64, 128, 8)
    benchmark(scc_cold_step, cfg, x, w)


if __name__ == "__main__":
    report_ablation_plan_cache()
