"""Figure 8 — ImageNet training speedup, normalized to Pytorch-Opt.

The paper normalizes to Pytorch-Opt here because Pytorch-Base "cannot even
run due to the excessive amount of the memory consumption" — our memory
model must reproduce that OOM, and the speedup series then compares
DSXplore vs Opt only.
"""
from common import emit
from repro.gpusim import (
    MemoryModel,
    OutOfMemoryError,
    extract_layer_shapes,
    tesla_v100,
    training_step_time,
)
from repro.models import build_model
from repro.models.registry import PAPER_MODELS
from repro.utils import format_table

SETTINGS_A = [(2, 0.5), (4, 0.5), (8, 0.5)]
SETTINGS_B = [(2, 0.25), (2, 0.75)]
BATCH = 64
IMAGE = (3, 224, 224)


def _build(name, cg, co):
    kwargs = dict(scheme="scc", cg=cg, co=co, num_classes=1000)
    if name.startswith(("resnet", "mobilenet")):
        kwargs["imagenet_stem"] = True
    return build_model(name, **kwargs)


def report_fig8(device=None):
    device = device or tesla_v100()
    mm = MemoryModel(device)
    oom_rows, speed_rows = [], []
    for name in PAPER_MODELS:
        for cg, co in SETTINGS_A + SETTINGS_B:
            model = _build(name, cg, co)
            shapes = extract_layer_shapes(model, IMAGE)
            base_mem = mm.report(shapes, BATCH, "channel_stack", cc_enabled=False)
            base_fits = base_mem.total <= device.mem_capacity
            if (cg, co) == (2, 0.5):
                oom_rows.append([name, f"{base_mem.total_mb / 1024:.1f} GB",
                                 "fits" if base_fits else "OOM (paper: cannot run)"])
            t_opt = training_step_time(shapes, BATCH, device, scc_strategy="conv_stack").total
            t_dsx = training_step_time(shapes, BATCH, device, scc_strategy="dsxplore").total
            speed_rows.append([name, cg, round(co * 100), f"{t_opt / t_dsx:.2f}"])
    text = format_table(
        ["Model", "Pytorch-Base footprint", "32GB V100"],
        oom_rows,
        title=f"Fig 8 precondition — Pytorch-Base memory at ImageNet scale (batch {BATCH})",
    )
    text += "\n\n" + format_table(
        ["Model", "cg", "co%", "DSXplore speedup over Pytorch-Opt (x)"],
        speed_rows,
        title="Fig 8 — ImageNet training speedup (simulated V100)",
    )
    text += "\nExpected shape (paper): 1.95x to 3.88x over Pytorch-Opt."
    return emit("fig8_training_speedup_imagenet", text), oom_rows, speed_rows


def test_fig8_base_ooms_on_imagenet(device):
    mm = MemoryModel(device)
    model = _build("vgg16", 2, 0.5)
    shapes = extract_layer_shapes(model, IMAGE)
    import pytest

    with pytest.raises(OutOfMemoryError):
        mm.check(mm.report(shapes, BATCH, "channel_stack", cc_enabled=False), "Base")
    mm.check(mm.report(shapes, BATCH, "conv_stack"))   # Opt fits


def test_fig8_speedup_range(device):
    _, _, rows = report_fig8(device)
    ratios = [float(r[3]) for r in rows]
    assert all(x > 1.0 for x in ratios)
    assert 1.1 < sum(ratios) / len(ratios) < 5.0   # paper band 1.95-3.88


def test_fig8_shape_extraction(benchmark):
    model = _build("resnet50", 2, 0.5)
    benchmark.pedantic(lambda: extract_layer_shapes(model, IMAGE), rounds=1, iterations=1)


if __name__ == "__main__":
    report_fig8()
