"""Serving (beyond the paper's figures) — the async gateway's scheduling
policies, measured on deterministic virtual-clock simulations plus one real
asyncio wall-clock section.

The PR-7 scheduling core (``repro.serve.sched``) is pure: every decision
takes an explicit ``now``, so seeded Poisson traffic replayed through a
virtual-clock event loop yields a bit-identical schedule on any machine —
the three policy sections below are therefore safe for the perf-trajectory
comparator to gate on (ratio-named metrics, no wall-clock noise).

Reported:

- **adaptive bucketing** — light vs heavy Poisson traffic under fixed-small
  (bucket 1), fixed-large (bucket 8) and EWMA-adaptive bucket policies on a
  single execution lane: adaptive matches fixed-small latency when arrivals
  are sparse and fixed-large throughput when they are not, and its targets
  agree with the ``repro.gpusim`` analytic queueing optimum;
- **shed ablation** — the *same* overload trace under deadline-aware vs
  newest-first shedding: deadline-aware drops only requests whose latency
  budget is already blown (``dropped_viable == 0`` is asserted), newest-first
  tail-drops viable work and serves requests that then miss their SLO;
- **fairness ablation** — 95/5 traffic skew between a heavy and a light
  model on one lane: with DRR the light model's p95 stays within 1.5x its
  solo p95 (asserted), FIFO makes it queue behind the heavy backlog;
- **measured gateway** — a real ``AsyncGateway`` run on the event loop with
  the asserted bitwise-parity check against the synchronous ``Server``.
"""
import asyncio
import time
from collections import Counter, defaultdict, deque

import numpy as np

from common import emit, full_mode
from repro.serve import AsyncGateway, GatewayConfig, SchedCore, Server, ServerConfig
from repro.utils import format_table, seed_all

INPUT = (3, 16, 16)


# ---------------------------------------------------------------------------
# Virtual-clock simulator: SchedCore + one execution lane, no wall clock
# ---------------------------------------------------------------------------

def poisson_trace(rng, rate: float, duration: float, model: str,
                  budget: float | None = None):
    """Seeded Poisson arrivals: (t, model, deadline) sorted by t."""
    out, t = [], 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= duration:
            return out
        out.append((t, model, None if budget is None else t + budget))


def simulate(core: SchedCore, trace, exec_time, exec_estimate: float = 0.0):
    """Replay ``trace`` through ``core`` on a single execution lane.

    ``exec_time(model, bucket)`` prices one batch; the lane serialises
    batches (the fairness policy decides the order each time it frees).
    Returns per-model latency/shed/goodput accounting.  Fully deterministic:
    the only clock is the trace's own timestamps.
    """
    queue = deque(trace)
    latencies = defaultdict(list)
    ontime = Counter()
    misses = Counter()
    shed = Counter()
    rejected = Counter()
    dropped_viable = Counter()
    now, lane_free = 0.0, 0.0

    def record_drop(victims, at):
        for victim in victims:
            shed[victim.model] += 1
            if not core.shed.blown(victim, at, exec_estimate):
                dropped_viable[victim.model] += 1

    while queue or core.pending_count():
        # Admit every arrival that has happened by `now`, at its own time.
        while queue and queue[0][0] <= now:
            t, model, deadline = queue.popleft()
            outcome = core.submit(model, INPUT, now=t, deadline=deadline)
            record_drop(outcome.displaced, t)
            if not outcome.accepted:
                rejected[model] += 1
                if deadline is None or deadline >= t + exec_estimate:
                    dropped_viable[model] += 1
        record_drop(core.shed_blown(now), now)
        if lane_free <= now:
            batch = core.next_batch(now)
            if batch is not None:
                done = now + exec_time(batch.model, batch.bucket)
                lane_free = done
                for request in batch.requests:
                    latencies[request.model].append(done - request.arrived_at)
                    if request.deadline is not None and done > request.deadline:
                        misses[request.model] += 1
                    else:
                        ontime[request.model] += 1
                continue
        # Nothing runnable at `now`: advance to the next decision point —
        # the next arrival, the core's next timer, or the lane freeing.
        times = [queue[0][0]] if queue else []
        if core.pending_count():
            event = core.next_event(now)
            if lane_free > now:
                # Lane busy: an already-due timer can only act once the
                # lane frees, so a stale event must not stall the clock.
                times.append(lane_free)
                if event is not None and event > now:
                    times.append(event)
            elif event is not None:
                # Epsilon-bump past strict boundaries (a deadline exactly
                # at `now + estimate` is viable now, blown just after).
                times.append(max(event, now + 1e-9))
        if not times:
            break
        now = max(now, min(times))
    return {
        "latencies": dict(latencies),
        "ontime": dict(ontime),
        "misses": dict(misses),
        "shed": dict(shed),
        "rejected": dict(rejected),
        "dropped_viable": dict(dropped_viable),
        "makespan": max(now, lane_free),
    }


def _pct(values, q):
    return float(np.percentile(np.asarray(values), q)) if values else 0.0


# ---------------------------------------------------------------------------
# Section 1 — adaptive bucketing: latency vs throughput across load levels
# ---------------------------------------------------------------------------

WINDOW = 0.010                        # flush window (max_latency), seconds
EXEC_BASE, EXEC_SLOT = 1.0e-3, 0.125e-3   # batch cost: base + slot * bucket

BUCKET_POLICIES = {
    "fixed-1": dict(bucket_sizes=(1,), adaptive_buckets=False),
    "fixed-8": dict(bucket_sizes=(8,), adaptive_buckets=False),
    "adaptive": dict(bucket_sizes=(1, 2, 4, 8), adaptive_buckets=True),
}


def _bucket_exec(model, bucket):
    return EXEC_BASE + EXEC_SLOT * bucket


def measure_bucketing():
    scale = 2.0 if full_mode() else 1.0
    scenarios = {
        # 60 req/s: ~0.6 expected arrivals per window — batch-mates are not
        # coming, the right bucket is 1.  3000 req/s saturates bucket 1
        # (service rate 1/exec(1) ~= 889/s) and needs bucket 8 (4000/s).
        "light": dict(rate=60.0, duration=1.0 * scale),
        "heavy": dict(rate=3000.0, duration=0.25 * scale),
    }
    rows, data = [], {}
    for scenario, cfg in scenarios.items():
        data[scenario] = {}
        for policy, knobs in BUCKET_POLICIES.items():
            rng = np.random.default_rng(11)   # same trace for every policy
            trace = poisson_trace(rng, cfg["rate"], cfg["duration"], "m")
            core = SchedCore(max_latency=WINDOW, **knobs)
            core.add_model("m")
            out = simulate(core, trace, _bucket_exec)
            lat = out["latencies"]["m"]
            row = {
                "scenario": scenario,
                "policy": policy,
                "requests": len(lat),
                "p50_ms": round(_pct(lat, 50) * 1e3, 3),
                "p95_ms": round(_pct(lat, 95) * 1e3, 3),
                "throughput_rps": round(len(lat) / out["makespan"], 1),
                "final_bucket_target": core.bucket_target("m"),
            }
            rows.append(row)
            data[scenario][policy] = row
    # Adaptive lands on the right extreme of its range at both load levels.
    assert data["light"]["adaptive"]["final_bucket_target"] == 1, data
    assert data["heavy"]["adaptive"]["final_bucket_target"] == 8, data
    data["light_adaptive_vs_fixed8_p50_speedup"] = round(
        data["light"]["fixed-8"]["p50_ms"] / data["light"]["adaptive"]["p50_ms"], 3
    )
    data["heavy_adaptive_vs_fixed1_p95_speedup"] = round(
        data["heavy"]["fixed-1"]["p95_ms"] / data["heavy"]["adaptive"]["p95_ms"], 3
    )
    # The trade the adaptive policy erases: small buckets win light load,
    # large buckets win heavy load, adaptation gets both.
    assert data["light_adaptive_vs_fixed8_p50_speedup"] > 2.0, data
    assert data["heavy_adaptive_vs_fixed1_p95_speedup"] > 2.0, data
    return rows, data


def analytic_cross_check():
    """The gpusim queueing model's optimal bucket across arrival rates —
    the analytic mirror of the EWMA policy's direction (monotone in load)."""
    from repro.gpusim.device import tesla_v100
    from repro.gpusim.timeline import optimal_bucket, serving_latency
    from repro.gpusim.workloads import extract_layer_shapes
    from repro.models import build_model

    model = build_model("mobilenet", scheme="scc", width_mult=0.25,
                        rng=np.random.default_rng(2))
    shapes = extract_layer_shapes(model, INPUT)
    device = tesla_v100()
    buckets = (1, 2, 4, 8)
    rows = []
    for rate in (10.0, 100.0, 1000.0, 5000.0, 20000.0):
        best = optimal_bucket(shapes, buckets, device, rate, WINDOW)
        est = serving_latency(shapes, best, device, rate, WINDOW)
        rows.append({
            "arrival_rate": rate,
            "optimal_bucket": best,
            "queue_wait_ms": round(est.queue_wait * 1e3, 4),
            "exec_ms": round(est.exec * 1e3, 4),
            "latency_ms": round(est.latency * 1e3, 4),
            "stable": est.stable,
        })
    targets = [r["optimal_bucket"] for r in rows]
    assert targets == sorted(targets), rows   # monotone in load
    assert targets[0] == 1 and targets[-1] == max(buckets), rows
    return rows


# ---------------------------------------------------------------------------
# Section 2 — shed ablation: deadline-aware vs newest-first on one trace
# ---------------------------------------------------------------------------

SHED_EXEC = 2.0e-3      # flat batch cost at bucket 4 -> 2000 req/s service
SHED_BUDGET = 5.0e-3    # per-request latency budget
SHED_PENDING = 32


def measure_shedding():
    scale = 2.0 if full_mode() else 1.0
    duration = 0.25 * scale
    rng = np.random.default_rng(17)
    # 2x overload: 4000 req/s arrivals against 2000 req/s service.  Shared
    # trace — both policies see the identical overload.
    trace = poisson_trace(rng, 4000.0, duration, "m", budget=SHED_BUDGET)
    runs = {}
    for policy in ("deadline", "newest"):
        core = SchedCore(bucket_sizes=(4,), max_latency=1e-3,
                         max_pending=SHED_PENDING, adaptive_buckets=False,
                         shed_policy=policy)
        core.add_model("m", exec_estimate=SHED_EXEC)
        out = simulate(core, list(trace), lambda m, b: SHED_EXEC,
                       exec_estimate=SHED_EXEC)
        runs[policy] = {
            "policy": policy,
            "arrivals": len(trace),
            "completed": len(out["latencies"].get("m", [])),
            "ontime": out["ontime"].get("m", 0),
            "missed": out["misses"].get("m", 0),
            "shed_blown": out["shed"].get("m", 0),
            "rejected": out["rejected"].get("m", 0),
            "dropped_viable": out["dropped_viable"].get("m", 0),
        }
    deadline, newest = runs["deadline"], runs["newest"]
    # The acceptance property: on the same overload trace the deadline
    # policy sheds *only* blown budgets, newest-first tail-drops viable
    # requests (every rejected newcomer still had its full budget).
    assert deadline["dropped_viable"] == 0, runs
    assert deadline["shed_blown"] > 0, runs
    assert newest["dropped_viable"] > 0, runs
    assert deadline["ontime"] > newest["ontime"], runs
    goodput_ratio = deadline["ontime"] / max(newest["ontime"], 1)
    return list(runs.values()), {
        **runs,
        "deadline_vs_newest_goodput_ratio": round(goodput_ratio, 3),
        "deadline_ontime_fill": round(deadline["ontime"] / len(trace), 4),
        "newest_ontime_fill": round(newest["ontime"] / len(trace), 4),
    }


# ---------------------------------------------------------------------------
# Section 3 — fairness ablation: DRR vs FIFO under 95/5 traffic skew
# ---------------------------------------------------------------------------

HEAVY_EXEC = 1.0e-3     # heavy batch (bucket 4): 4000 req/s service
LIGHT_EXEC = 0.5e-3
HEAVY_PERIOD = 20e-3    # upstream-batched heavy traffic: one burst per period
HEAVY_BURST = 72        # 18 bucket-4 batches = 18 ms of work -> 0.9 util
DRR_P95_GATE = 1.5      # light p95 under skew vs solo, DRR must stay within


def _fair_exec(model, bucket):
    return HEAVY_EXEC if model == "heavy" else LIGHT_EXEC


def measure_fairness():
    scale = 2.0 if full_mode() else 1.0
    duration = 0.5 * scale
    # 95/5 skew at 0.9 lane utilisation.  The heavy model's traffic arrives
    # in periodic bursts (the upstream-batched pattern): every burst leaves
    # an ~18 ms standing backlog whose head predates any light request that
    # arrives inside the period — exactly the backlog FIFO's oldest-head
    # rule makes the light model queue behind, and DRR does not.
    light_trace = poisson_trace(np.random.default_rng(23), 190.0, duration,
                                "light")
    heavy_trace = [
        (k * HEAVY_PERIOD + i * 1e-6, "heavy", None)
        for k in range(int(duration / HEAVY_PERIOD))
        for i in range(HEAVY_BURST)
    ]
    mixed = sorted(light_trace + heavy_trace, key=lambda e: e[0])

    def run(fairness, trace, models):
        core = SchedCore(bucket_sizes=(4,), adaptive_buckets=False,
                         fairness=fairness)
        for name, window in models:
            core.add_model(name, max_latency=window)
        return simulate(core, list(trace), _fair_exec)

    solo = run("drr", light_trace, [("light", 5e-3)])
    models = [("light", 5e-3), ("heavy", 1e-3)]
    drr = run("drr", mixed, models)
    fifo = run("fifo", mixed, models)

    solo_p95 = _pct(solo["latencies"]["light"], 95)
    rows, data = [], {"light_requests": len(light_trace),
                      "heavy_requests": len(heavy_trace)}
    for policy, out in (("solo", solo), ("drr", drr), ("fifo", fifo)):
        light = out["latencies"]["light"]
        heavy = out["latencies"].get("heavy", [])
        rows.append({
            "policy": policy,
            "light_p50_ms": round(_pct(light, 50) * 1e3, 3),
            "light_p95_ms": round(_pct(light, 95) * 1e3, 3),
            "heavy_p95_ms": round(_pct(heavy, 95) * 1e3, 3),
            "light_vs_solo_p95_ratio": round(_pct(light, 95) / solo_p95, 3),
        })
        data[policy] = rows[-1]
    data["drr_light_p95_vs_solo_ratio"] = data["drr"]["light_vs_solo_p95_ratio"]
    data["fifo_light_p95_vs_solo_ratio"] = data["fifo"]["light_vs_solo_p95_ratio"]
    # Everything completes under both policies (no shedding here) — the
    # ablation isolates *ordering*, not capacity.
    assert len(drr["latencies"]["light"]) == len(light_trace), data
    assert len(fifo["latencies"]["light"]) == len(light_trace), data
    # The acceptance property: DRR bounds the light model's p95 inflation
    # under skew; FIFO queues it behind the heavy backlog and blows past.
    assert data["drr_light_p95_vs_solo_ratio"] <= DRR_P95_GATE, data
    assert data["fifo_light_p95_vs_solo_ratio"] > DRR_P95_GATE, data
    return rows, data


# ---------------------------------------------------------------------------
# Section 4 — measured asyncio gateway + bitwise parity with the sync server
# ---------------------------------------------------------------------------

def measure_gateway():
    from repro.models import build_model

    def model():
        return build_model("mobilenet", scheme="scc", width_mult=0.25,
                           rng=np.random.default_rng(2))

    n = 24 if full_mode() else 12
    rng = np.random.default_rng(31)
    images = [rng.standard_normal(INPUT).astype(np.float32) for _ in range(n)]

    server = Server(model(), input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(4,), max_latency=1.0))
    ids = [server.submit(image) for image in images]
    server.flush()
    sync_out = [server.result(i).output for i in ids]

    async def run():
        gw = AsyncGateway(GatewayConfig(bucket_sizes=(4,), max_latency=0.005,
                                        adaptive_buckets=False))
        gw.register("m", model(), input_shapes=[INPUT])
        start = time.perf_counter()
        results = await asyncio.gather(
            *[gw.submit("m", image, budget=30.0) for image in images]
        )
        wall = time.perf_counter() - start
        metrics = gw.metrics()["m"]
        await gw.stop()
        return results, wall, metrics

    results, wall, metrics = asyncio.run(run())
    # The gateway's core invariant, asserted in the bench itself: padding
    # to the fixed bucket makes batch composition invisible bit-for-bit.
    for sync_row, result in zip(sync_out, results):
        np.testing.assert_array_equal(sync_row, result.output)
    return {
        "requests": n,
        "wall_ms": round(wall * 1e3, 2),
        "throughput_rps": round(n / wall, 1),
        "queue_wait_mean_ms": round(metrics.queue_wait_mean * 1e3, 3),
        "exec_mean_ms": round(metrics.exec_mean * 1e3, 3),
        "deadline_misses": metrics.deadline_misses,
        "bitwise_equal_sync": True,
    }


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------

def report_async_gateway():
    seed_all(13)
    bucket_rows, bucket_data = measure_bucketing()
    analytic_rows = analytic_cross_check()
    shed_rows, shed_data = measure_shedding()
    fair_rows, fair_data = measure_fairness()
    gateway = measure_gateway()

    table = format_table(
        ["Load", "bucket policy", "served", "p50 (ms)", "p95 (ms)", "req/s",
         "target"],
        [[r["scenario"], r["policy"], str(r["requests"]),
          f"{r['p50_ms']:.2f}", f"{r['p95_ms']:.2f}",
          f"{r['throughput_rps']:.0f}", str(r["final_bucket_target"])]
         for r in bucket_rows],
        title="Adaptive bucketing — light (60/s) vs heavy (3000/s) Poisson "
              "traffic, one execution lane, 10 ms flush window",
    )
    table += (
        "\nAdaptive follows the EWMA arrival rate to bucket "
        f"{bucket_data['light']['adaptive']['final_bucket_target']} under light "
        f"load ({bucket_data['light_adaptive_vs_fixed8_p50_speedup']:.1f}x the "
        "fixed-8 p50) and bucket "
        f"{bucket_data['heavy']['adaptive']['final_bucket_target']} under heavy "
        f"load ({bucket_data['heavy_adaptive_vs_fixed1_p95_speedup']:.1f}x the "
        "fixed-1 p95).\n\n"
    )
    table += format_table(
        ["Arrival rate (req/s)", "optimal bucket", "queue wait (ms)",
         "exec (ms)", "latency (ms)", "stable"],
        [[f"{r['arrival_rate']:.0f}", str(r["optimal_bucket"]),
          f"{r['queue_wait_ms']:.3f}", f"{r['exec_ms']:.3f}",
          f"{r['latency_ms']:.3f}", str(r["stable"])] for r in analytic_rows],
        title="gpusim analytic cross-check — optimal bucket vs arrival rate "
              "(mobilenet-scc on modelled V100)",
    )
    table += (
        "\nBoth the EWMA policy and the analytic queueing model move the "
        "bucket\nmonotonically with load: small for latency when idle, max "
        "for\nthroughput at saturation.\n\n"
    )
    table += format_table(
        ["Shed policy", "arrivals", "on-time", "missed", "shed blown",
         "rejected", "dropped viable"],
        [[r["policy"], str(r["arrivals"]), str(r["ontime"]), str(r["missed"]),
          str(r["shed_blown"]), str(r["rejected"]), str(r["dropped_viable"])]
         for r in shed_rows],
        title="Shed ablation — same 2x-overload trace (4000/s vs 2000/s "
              "service, 5 ms budgets), deadline-aware vs newest-first",
    )
    table += (
        "\nDeadline-aware shedding drops only requests whose budget is "
        "already\nblown (dropped viable = 0) and displaces them to admit "
        "viable\nnewcomers; newest-first tail-drops fresh requests with "
        "their whole\nbudget left, then serves stale ones that miss anyway "
        f"({shed_data['deadline_vs_newest_goodput_ratio']:.1f}x goodput "
        "gap).\n\n"
    )
    table += format_table(
        ["Fairness", "light p50 (ms)", "light p95 (ms)", "heavy p95 (ms)",
         "light p95 vs solo"],
        [[r["policy"], f"{r['light_p50_ms']:.2f}", f"{r['light_p95_ms']:.2f}",
          f"{r['heavy_p95_ms']:.2f}", f"{r['light_vs_solo_p95_ratio']:.2f}x"]
         for r in fair_rows],
        title="Fairness ablation — 95/5 heavy/light skew (bursty heavy "
              "traffic, 0.9 lane utilisation), DRR vs FIFO",
    )
    table += (
        "\nDRR keeps the light model's p95 within "
        f"{fair_data['drr_light_p95_vs_solo_ratio']:.2f}x of its solo p95 "
        f"(gate {DRR_P95_GATE}x); FIFO queues it behind the heavy backlog "
        f"at {fair_data['fifo_light_p95_vs_solo_ratio']:.2f}x.\n\n"
    )
    table += format_table(
        ["Requests", "wall (ms)", "req/s", "queue wait (ms)", "exec (ms)",
         "bitwise == sync"],
        [[str(gateway["requests"]), f"{gateway['wall_ms']:.1f}",
          f"{gateway['throughput_rps']:.0f}",
          f"{gateway['queue_wait_mean_ms']:.2f}",
          f"{gateway['exec_mean_ms']:.2f}",
          str(gateway["bitwise_equal_sync"])]],
        title="Measured asyncio gateway — real event loop, mobilenet-scc, "
              "fixed bucket 4",
    )
    table += (
        "\nThe measured section re-asserts the serving tier's core "
        "invariant:\nthe async gateway's outputs are bit-identical to the "
        "synchronous\nserver's at the same fixed bucket."
    )
    data = {
        "bucketing": bucket_data,
        "analytic": analytic_rows,
        "shedding": {k: v for k, v in shed_data.items()
                     if not isinstance(v, dict)},
        "shedding_runs": shed_rows,
        "fairness": fair_data,
        "gateway": gateway,
        "light_adaptive_vs_fixed8_p50_speedup":
            bucket_data["light_adaptive_vs_fixed8_p50_speedup"],
        "heavy_adaptive_vs_fixed1_p95_speedup":
            bucket_data["heavy_adaptive_vs_fixed1_p95_speedup"],
        "deadline_vs_newest_goodput_ratio":
            shed_data["deadline_vs_newest_goodput_ratio"],
        "drr_light_p95_vs_solo_ratio":
            fair_data["drr_light_p95_vs_solo_ratio"],
        "fifo_light_p95_vs_solo_ratio":
            fair_data["fifo_light_p95_vs_solo_ratio"],
    }
    return emit("async_gateway", table, data=data), data


def test_async_gateway_gates():
    _, data = report_async_gateway()
    # Adaptive bucketing beats the wrong fixed extreme at both load levels.
    assert data["light_adaptive_vs_fixed8_p50_speedup"] > 2.0, data
    assert data["heavy_adaptive_vs_fixed1_p95_speedup"] > 2.0, data
    # Deadline-aware shedding never drops viable work; newest-first does.
    deadline = next(r for r in data["shedding_runs"] if r["policy"] == "deadline")
    newest = next(r for r in data["shedding_runs"] if r["policy"] == "newest")
    assert deadline["dropped_viable"] == 0 and newest["dropped_viable"] > 0
    assert data["deadline_vs_newest_goodput_ratio"] > 1.5, data
    # DRR bounds the light model's p95 under skew; FIFO blows past the gate.
    assert data["drr_light_p95_vs_solo_ratio"] <= DRR_P95_GATE, data
    assert data["fifo_light_p95_vs_solo_ratio"] > DRR_P95_GATE, data
    # The measured gateway matched the sync server bit-for-bit.
    assert data["gateway"]["bitwise_equal_sync"] is True


if __name__ == "__main__":
    report_async_gateway()
