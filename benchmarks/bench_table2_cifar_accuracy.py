"""Table II — CIFAR-10: Origin vs DSXplore across the five CNNs.

Cost columns (MFLOPs, params) are exact analytic counts on the *full-size*
architectures at CIFAR geometry — directly comparable to the paper.  The
accuracy columns come from width-reduced instances trained on the synthetic
CIFAR-10 stand-in (DESIGN.md section 2); the reproducible shape is the
*relative* accuracy drop of DSXplore vs Origin, not the absolute numbers.
"""
from common import emit, full_mode, reduced_training_setup, train_and_score
from repro.analysis import profile_model
from repro.models import build_model
from repro.models.registry import PAPER_MODELS
from repro.utils import format_table, seed_all

PAPER_TABLE2 = {
    # model: (origin MFLOPs, origin params M, origin acc, dsx MFLOPs, dsx params M, dsx acc)
    "vgg16": (314.16, 14.73, 92.64, 21.85, 0.87, 92.60),
    "vgg19": (399.17, 20.04, 93.88, 26.92, 1.19, 92.71),
    "mobilenet": (50.00, 6.17, 92.05, 30.00, 0.59, 92.56),
    "resnet18": (255.89, 11.17, 95.75, 43.99, 0.84, 94.44),
    "resnet50": (1297.80, 23.52, 95.82, 735.79, 12.87, 95.12),
}


def analytic_costs():
    rows = {}
    for name in PAPER_MODELS:
        origin = profile_model(build_model(name), (3, 32, 32))
        dsx = profile_model(build_model(name, scheme="scc", cg=2, co=0.5), (3, 32, 32))
        rows[name] = (origin.mflops, origin.params_m, dsx.mflops, dsx.params_m)
    return rows


def trained_accuracies(models=("mobilenet", "resnet18")):
    """Reduced-model accuracy column; restricted set unless REPRO_BENCH_FULL.

    Uses the calibrated mini-model protocol (depth/width-reduced instances
    of each architecture on 8-channel synthetic data) so quick-mode numbers
    land well above chance; see EXPERIMENTS.md for protocol details.
    """
    from common import accuracy_protocol, build_mini

    names = PAPER_MODELS if full_mode() else models
    epochs = 10 if full_mode() else 7
    accs = {}
    for name in names:
        train_loader, test_loader = accuracy_protocol(seed=2)
        seed_all(7)
        origin = build_mini(name)
        acc_o = train_and_score(origin, train_loader, test_loader, epochs, lr=0.1)
        seed_all(7)
        dsx = build_mini(name, scheme="scc", cg=2, co=0.5)
        acc_d = train_and_score(dsx, train_loader, test_loader, epochs, lr=0.1)
        accs[name] = (acc_o, acc_d)
    return accs


def report_table2(with_accuracy=True):
    costs = analytic_costs()
    rows = []
    for name in PAPER_MODELS:
        om, op, dm, dp = costs[name]
        pom, pop, _, pdm, pdp, _ = PAPER_TABLE2[name]
        rows.append([name, "Origin", f"{om:.2f}", f"{op:.2f}M", f"{pom:.2f}", f"{pop:.2f}M"])
        rows.append([name, "DSXplore", f"{dm:.2f}", f"{dp:.2f}M", f"{pdm:.2f}", f"{pdp:.2f}M"])
    text = format_table(
        ["Model", "Impl", "MFLOPs (ours)", "Param (ours)", "MFLOPs (paper)", "Param (paper)"],
        rows,
        title="Table II cost columns — full-size models, CIFAR geometry",
    )
    text += (
        "\nNote: paper's ResNet18 origin row (255.89 MFLOPs) is inconsistent with its own\n"
        "param count and its DSXplore row; our 555.42 origin count *is* consistent with\n"
        "the paper's DSXplore 43.99 MFLOPs (see EXPERIMENTS.md).  MobileNet origin params\n"
        "(6.17M in the paper) likewise disagree with the standard architecture (3.22M).\n"
    )
    accs = {}
    if with_accuracy:
        accs = trained_accuracies()
        acc_rows = [
            [name, f"{o:.3f}", f"{d:.3f}", f"{d - o:+.3f}"] for name, (o, d) in accs.items()
        ]
        text += "\nAccuracy (mini variants on the 8-channel synthetic stand-in, chance=0.10):\n"
        text += format_table(["Model", "Origin acc", "DSXplore acc", "delta"], acc_rows)
        text += (
            "\nExpected shape (paper): DSXplore stays within a few points of Origin\n"
            "while cutting ~70% FLOPs and ~83% params on average."
        )
    return emit("table2_cifar", text), costs, accs


def test_table2_cost_columns():
    _, costs, _ = report_table2(with_accuracy=False)
    # Cost columns must reproduce the paper where the paper is self-consistent.
    assert abs(costs["vgg16"][0] - 314.16) / 314.16 < 0.01
    assert abs(costs["resnet50"][0] - 1297.80) / 1297.80 < 0.001
    assert abs(costs["vgg16"][2] - 21.85) / 21.85 < 0.10
    assert abs(costs["resnet50"][2] - 735.79) / 735.79 < 0.10
    # DSXplore always cheaper.
    for name, (om, op, dm, dp) in costs.items():
        assert dm < om and dp < op, name


def test_table2_training_step(benchmark):
    """Measured: one training step of the reduced DSXplore MobileNet."""
    import numpy as np

    from repro.train import Trainer, TrainConfig

    seed_all(3)
    model = build_model("mobilenet", scheme="scc", cg=2, co=0.5, width_mult=0.125)
    trainer = Trainer(model, TrainConfig(epochs=1, lr=0.05))
    rng = np.random.default_rng(0)
    images = rng.standard_normal((16, 3, 16, 16)).astype(np.float32)
    labels = rng.integers(0, 10, 16)
    benchmark(trainer.train_step, images, labels)


if __name__ == "__main__":
    report_table2()
