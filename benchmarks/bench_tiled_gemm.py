"""Tiled bitwise-stable contractions (beyond the paper's figures).

The dense ``groups == 1`` conv2d forward and the dsxplore pull-GEMM used to
run as single lone einsum calls — zero parallel coverage in the ``threaded``
backend.  The schedule-table tiling (:mod:`repro.backend.schedule`) cuts the
contraction axis into tiles whose partials are combined through a canonical
fixed-order pairwise tree, so the result is bit-identical on any worker
count *and* the per-tile partials parallelise.  This report quantifies every
side of that trade:

1. **Tile sweep** — for each tile size (0 = untiled full-K): the numpy
   serial wall time, the traced-and-LPT-modelled ``threaded`` time at the
   gate worker count, and the gpusim ``tiled_speedup`` curve next to the
   modelled one.  Bitwise equality against numpy running the identical
   schedule is asserted at every (tile, workers) grid point first.
2. **Canonical-order overhead** — tiled-serial vs untiled single-einsum
   numpy wall time: what the deterministic reduction order costs when no
   pool exists to pay it back.
3. **Fast precision tier** — ``REPRO_PRECISION=fast`` accumulates partials
   in completion order (no tree, no partial list); its result is only
   allclose, and the observed max abs/rel error against the canonical
   result is measured and asserted within documented bounds.
4. **Fused epilogue** — the staged conv -> bias -> BN -> activation
   epilogue applied per output tile vs the same ops as separate
   materialised passes: bitwise equality asserted, speedup reported next
   to gpusim's ``fused_epilogue_speedup``.
"""
import numpy as np

from common import emit, full_mode
from repro.backend import (
    EpilogueArgs,
    KernelStats,
    clear_plan_cache,
    conv2d_plan,
    get_kernel,
    get_num_workers,
    precision,
    scc_plan,
    set_num_workers,
    tile_override,
    tile_slices,
)
from repro.backend.parallel import makespan, trace_parallel
from repro.core.channel_map import SCCConfig
from repro.gpusim import tesla_v100
from repro.utils import format_table, seed_all, time_callable

TILE_SWEEP = (8, 32, 128, 0)     # 0 = untiled full-K
BITWISE_WORKERS = (1, 2, 4)
MODEL_WORKERS = 4
# Documented fast-tier bounds: completion-order accumulation of float32
# partials drifts by a few ulps of the largest partial sum.  Where the
# partials cancel, the error is absolute (ulps of the partials, not of the
# near-zero result) — that is what the atol floor covers; rtol covers
# everything else.  Both are far inside float32 training noise.
FAST_RTOL = 1e-4
FAST_ATOL = 1e-4


class DenseConvForward:
    """Dense conv2d forward: the k-tiled lone GEMM."""

    name = "conv-dense-fwd"

    def __init__(self, n, cin, hw, cout):
        rng = np.random.default_rng(27)
        self.x = rng.standard_normal((n, cin, hw, hw)).astype(np.float32)
        self.w = rng.standard_normal((cout, cin, 3, 3)).astype(np.float32)
        self.plan = conv2d_plan(self.x.shape, self.w.shape, 1, 1, 1, self.x.dtype)
        self.axis_extent = cin

    def run(self, backend: str) -> np.ndarray:
        out, _ = get_kernel("conv2d", backend)(self.plan, self.x, self.w)
        return out


class PullGemm:
    """dsxplore input-centric pull-GEMM: the o-tiled lone GEMM."""

    name = "pull-gemm"

    def __init__(self, n, hw, cfg: SCCConfig):
        self.plan = scc_plan(cfg)
        rng = np.random.default_rng(28)
        self.x = rng.standard_normal(
            (n, cfg.in_channels, hw, hw)
        ).astype(np.float32)
        self.w = rng.standard_normal(
            (cfg.out_channels, cfg.group_width)
        ).astype(np.float32)
        self.grad = np.random.default_rng(29).standard_normal(
            (n, cfg.out_channels, hw, hw)
        ).astype(np.float32)
        self.axis_extent = cfg.out_channels

    def run(self, backend: str) -> np.ndarray:
        grad_x, _ = get_kernel("scc_backward", backend)(
            self.plan, {"x": self.x, "w": self.w}, self.grad,
            strategy="dsxplore", backward_design="input_centric",
            need_weight_grad=False, stats=KernelStats(),
        )
        return grad_x


def _modeled_at(run, workers: int, repeats: int = 2):
    """(traced serial wall, modelled wall at ``workers``), best-of trace."""
    best = None
    for _ in range(repeats):
        with trace_parallel() as regions:
            timer = time_callable(run, repeats=1, warmup=0)
        if best is None or timer.minimum < best[0]:
            best = (timer.minimum, regions)
    serial, regions = best
    region_serial = sum(r.total_seconds for r in regions)
    outside = max(0.0, serial - region_serial)
    modeled = outside + sum(makespan(r.task_seconds, workers) for r in regions)
    return serial, modeled


def _tile_sweep(workload, device, repeats: int):
    rows = []
    for tile in TILE_SWEEP:
        with tile_override(k_tile=tile, gradw_tile=tile, pull_tile=tile):
            tiles = len(tile_slices(workload.axis_extent, tile))
            ref = workload.run("numpy")
            for workers in BITWISE_WORKERS:
                set_num_workers(workers)
                got = workload.run("threaded")
                assert np.array_equal(ref, got), (
                    f"{workload.name} diverged from numpy at tile={tile}, "
                    f"workers={workers}"
                )
            t_numpy = time_callable(
                lambda: workload.run("numpy"), repeats=repeats, warmup=1
            ).median
            serial, modeled = _modeled_at(
                lambda: workload.run("threaded"), MODEL_WORKERS
            )
            rows.append({
                "workload": workload.name,
                "tile": tile,
                "tiles": tiles,
                "numpy_ms": round(t_numpy * 1e3, 3),
                "modeled_ms": round(modeled * 1e3, 3),
                "speedup_modeled": round(serial / modeled, 3),
                "gpusim_speedup": round(
                    device.tiled_speedup(MODEL_WORKERS, tiles), 3
                ),
                "bitwise_workers": list(BITWISE_WORKERS),
            })
    return rows


def _untiled_overhead(workload, repeats: int) -> dict:
    """Serial cost of the canonical tiled order vs the lone einsum."""
    t_tiled = time_callable(
        lambda: workload.run("numpy"), repeats=repeats, warmup=1
    ).median
    with tile_override(k_tile=0, gradw_tile=0, pull_tile=0):
        t_untiled = time_callable(
            lambda: workload.run("numpy"), repeats=repeats, warmup=1
        ).median
    return {
        "workload": workload.name,
        "tiled_ms": round(t_tiled * 1e3, 3),
        "untiled_ms": round(t_untiled * 1e3, 3),
        "overhead_ratio": round(t_tiled / t_untiled, 3),
    }


def _fast_tier(workload, trials: int) -> dict:
    """Max observed fast-tier error vs the canonical result (asserted)."""
    canonical = workload.run("numpy")
    scale = float(np.abs(canonical).max())
    max_abs = 0.0
    max_rel = 0.0
    set_num_workers(MODEL_WORKERS)
    with precision("fast"):
        for _ in range(trials):
            fast = workload.run("threaded")
            assert np.allclose(fast, canonical, rtol=FAST_RTOL, atol=FAST_ATOL), (
                f"{workload.name} fast tier outside documented bounds"
            )
            diff = np.abs(fast - canonical)
            max_abs = max(max_abs, float(diff.max()))
            max_rel = max(max_rel, float(diff.max()) / scale)
    return {
        "workload": workload.name,
        "trials": trials,
        "max_abs_err": max_abs,
        "max_rel_err": max_rel,
        "rtol_bound": FAST_RTOL,
        "atol_bound": FAST_ATOL,
    }


def _fused_epilogue(device, repeats: int) -> dict:
    """Fused conv->bias->BN->relu vs the same ops as separate passes."""
    from repro.backend import conv2d_fused_plan, EpilogueSpec

    n, cin, hw, cout = (8, 64, 32, 128) if full_mode() else (6, 64, 24, 128)
    rng = np.random.default_rng(30)
    x = rng.standard_normal((n, cin, hw, hw)).astype(np.float32)
    w = rng.standard_normal((cout, cin, 3, 3)).astype(np.float32)
    bias = rng.standard_normal((1, cout, 1, 1)).astype(np.float32)
    mean = rng.standard_normal((1, cout, 1, 1)).astype(np.float32)
    scale = (
        rng.standard_normal((1, cout, 1, 1)).astype(np.float32) * 0.1 + 1.0
    )
    beta = rng.standard_normal((1, cout, 1, 1)).astype(np.float32)
    spec = EpilogueSpec(bias=True, affine=True, activation="relu")
    fplan = conv2d_fused_plan(x.shape, w.shape, 1, 1, 1, x.dtype, spec)
    epilogue = EpilogueArgs(
        bias=bias, mean=mean, scale=scale, beta=beta, activation="relu"
    )
    plan = conv2d_plan(x.shape, w.shape, 1, 1, 1, x.dtype)
    fused_kernel = get_kernel("conv2d_fused", "numpy")
    conv_kernel = get_kernel("conv2d", "numpy")

    def unfused() -> np.ndarray:
        out, _ = conv_kernel(plan, x, w)
        # The pre-fusion module path: each stage materialises a new array,
        # same op sequence as the epilogue replays in place.
        out = out + bias
        out = (out - mean) * scale + beta
        return out * (out > 0)

    def fused() -> np.ndarray:
        return fused_kernel(fplan, x, w, epilogue)

    ref, got = unfused(), fused()
    assert np.array_equal(ref, got), "fused epilogue diverged from staged ops"
    t_unfused = time_callable(unfused, repeats=repeats, warmup=1).median
    t_fused = time_callable(fused, repeats=repeats, warmup=1).median
    return {
        "stages": spec.stages,
        "unfused_ms": round(t_unfused * 1e3, 3),
        "fused_ms": round(t_fused * 1e3, 3),
        "speedup": round(t_unfused / t_fused, 3),
        "gpusim_speedup": round(
            device.fused_epilogue_speedup(spec.stages), 3
        ),
        "bitwise_equal": True,
    }


def report_tiled_gemm():
    seed_all(0)
    repeats = 5 if full_mode() else 3
    n = 8 if full_mode() else 6
    hw = 32 if full_mode() else 24
    device = tesla_v100()
    old_workers = get_num_workers()
    workloads = [
        DenseConvForward(n, 64, hw, 128),
        PullGemm(n, hw, SCCConfig(64, 128, 4, 0.25)),
    ]
    try:
        clear_plan_cache()
        for workload in workloads:
            workload.run("numpy")  # warm plans
        sweep_rows = []
        for workload in workloads:
            sweep_rows.extend(_tile_sweep(workload, device, repeats))
        overhead = [_untiled_overhead(w, repeats) for w in workloads]
        fast = [_fast_tier(w, trials=3) for w in workloads]
        fused = _fused_epilogue(device, repeats)
    finally:
        set_num_workers(old_workers)

    table = format_table(
        ["Workload", "tile", "tiles", "numpy (ms)",
         f"modeled@{MODEL_WORKERS}w (ms)", "modeled speedup", "gpusim"],
        [[r["workload"], str(r["tile"]), str(r["tiles"]),
          f"{r['numpy_ms']:.2f}", f"{r['modeled_ms']:.2f}",
          f"{r['speedup_modeled']:.2f}", f"{r['gpusim_speedup']:.2f}"]
         for r in sweep_rows],
        title="Tile sweep: canonical tiled contractions, bitwise-equal to "
              "numpy at workers {1,2,4} (asserted), modelled at "
              f"{MODEL_WORKERS} workers",
    )
    table += "\n\n" + format_table(
        ["Workload", "tiled serial (ms)", "untiled (ms)", "overhead ratio"],
        [[r["workload"], f"{r['tiled_ms']:.2f}", f"{r['untiled_ms']:.2f}",
          f"{r['overhead_ratio']:.2f}"] for r in overhead],
        title="Canonical-order serial overhead (schedule-table tile vs lone "
              "einsum, single-threaded numpy)",
    )
    table += "\n\n" + format_table(
        ["Workload", "trials", "max abs err", "max rel err", "bounds"],
        [[r["workload"], str(r["trials"]), f"{r['max_abs_err']:.2e}",
          f"{r['max_rel_err']:.2e}", f"rtol={r['rtol_bound']}"]
         for r in fast],
        title="REPRO_PRECISION=fast: completion-order accumulation error "
              "vs the canonical result (allclose asserted)",
    )
    table += "\n\n" + format_table(
        ["stages", "unfused (ms)", "fused (ms)", "speedup", "gpusim"],
        [[str(fused["stages"]), f"{fused['unfused_ms']:.2f}",
          f"{fused['fused_ms']:.2f}", f"{fused['speedup']:.2f}",
          f"{fused['gpusim_speedup']:.2f}"]],
        title="Fused conv->bias->BN->relu epilogue vs separate materialised "
              "passes (bitwise-equal, asserted)",
    )
    data = {
        "tile_sweep": sweep_rows,
        "untiled_overhead": overhead,
        "fast_tier": fast,
        "fused_epilogue": fused,
        "model_workers": MODEL_WORKERS,
    }
    return emit("tiled_gemm", table, data=data), data


def test_tiled_gemm_gate():
    _, data = report_tiled_gemm()
    assert data["fused_epilogue"]["bitwise_equal"]
    # Every tile size of every workload passed the bitwise worker grid.
    assert len(data["tile_sweep"]) == 2 * len(TILE_SWEEP)
    # Fast tier stayed inside its documented bounds.
    for row in data["fast_tier"]:
        assert row["max_rel_err"] <= FAST_RTOL
    # The canonical order's serial cost stays bounded: compute-rich dense
    # conv pays ~1.2x, while the memory-bound pull-GEMM pays up to ~2x
    # (its partials are full output-sized buffers, so tiling roughly
    # doubles the write traffic).  The pool pays both back from 2 workers
    # on (see bench_backend_scaling's gate).
    for row in data["untiled_overhead"]:
        assert row["overhead_ratio"] < 2.5, row


if __name__ == "__main__":
    report_tiled_gemm()
